package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"dynmis"
	"dynmis/trace"
	"dynmis/workload"
)

// churnChanges instantiates the canonical churn scenario.
func churnChanges(t *testing.T, seed uint64, n, steps int) []dynmis.Change {
	t.Helper()
	sc, ok := workload.ScenarioByName("churn")
	if !ok {
		t.Fatal("churn scenario missing")
	}
	inst := sc.Instantiate(seed, n, steps)
	return slices.Concat(inst.Build, inst.Drive)
}

// mustIngest applies changes directly, failing the test on any rejection.
func mustIngest(t *testing.T, s *Server, cs []dynmis.Change) IngestResult {
	t.Helper()
	res, err := s.Ingest(cs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("%d changes rejected: %v", res.Rejected, res.Errors)
	}
	return res
}

// crash simulates a kill -9: the WAL file descriptor is closed without
// flushing the userspace buffer, the fsync loop is stopped, and nothing
// else is cleaned up.
func (s *Server) crash() {
	s.mu.Lock()
	s.closed = true
	if s.wal != nil {
		if s.wal.stop != nil {
			close(s.wal.stop)
			<-s.wal.stopped
		}
		s.wal.cf.f.Close()
		s.wal = nil
	}
	s.mu.Unlock()
	s.hub.close()
}

// referenceRun replays the changes into a fresh maintainer and returns
// its state plus the number of events it published — the uninterrupted
// run every recovery is measured against.
func referenceRun(t *testing.T, seed uint64, cs []dynmis.Change) (map[dynmis.NodeID]dynmis.Membership, uint64) {
	t.Helper()
	m, err := dynmis.New(dynmis.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	var events uint64
	m.Subscribe(func(dynmis.Event) { events++ })
	for _, c := range cs {
		if _, err := m.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	return m.State(), events
}

func serverState(t *testing.T, s *Server) map[dynmis.NodeID]dynmis.Membership {
	t.Helper()
	nodes, _ := s.stateSnapshot()
	state := make(map[dynmis.NodeID]dynmis.Membership, len(nodes))
	for _, n := range nodes {
		m := dynmis.Out
		if n.InMIS {
			m = dynmis.In
		}
		state[n.Node] = m
	}
	return state
}

// TestCrashRecoveryMatchesUninterruptedReplay is the acceptance-criteria
// test: drive a workload, crash (no flush, no snapshot finalization),
// reopen from snapshot + WAL tail, and the recovered State and event Seq
// watermark equal the uninterrupted replay's exactly. Then keep driving
// and the continued event stream is identical too.
func TestCrashRecoveryMatchesUninterruptedReplay(t *testing.T) {
	const seed = 7
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.jsonl")
	cs := churnChanges(t, seed, 120, 3000)
	cut := 2 * len(cs) / 3

	cfg := Config{Seed: seed, WALPath: walPath, SnapEvery: 400, Fsync: FsyncAlways}
	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, s1, cs[:cut])
	preSeq := s1.Seq()
	s1.crash()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.FromSnapshot {
		t.Fatalf("expected snapshot recovery, got %+v", rec)
	}
	if got := s2.Seq(); got != preSeq {
		t.Fatalf("recovered watermark %d, pre-crash %d", got, preSeq)
	}

	refState, refEvents := referenceRun(t, seed, cs[:cut])
	if refEvents != preSeq {
		t.Fatalf("reference run published %d events, daemon watermark %d", refEvents, preSeq)
	}
	if got := serverState(t, s2); !maps.Equal(got, refState) {
		t.Fatalf("recovered state diverged from uninterrupted replay:\n got %v\nwant %v", got, refState)
	}

	// The recovered daemon continues the identical run: drive the rest and
	// compare against the full-reference replay.
	mustIngest(t, s2, cs[cut:])
	fullState, fullEvents := referenceRun(t, seed, cs)
	if got := s2.Seq(); got != fullEvents {
		t.Fatalf("continued watermark %d, full replay %d", got, fullEvents)
	}
	if got := serverState(t, s2); !maps.Equal(got, fullState) {
		t.Fatal("continued state diverged from uninterrupted replay")
	}
}

// TestCrashRecoveryTornTail: a crash mid-append leaves a torn final line;
// recovery truncates it and the daemon comes up at the last complete
// record.
func TestCrashRecoveryTornTail(t *testing.T) {
	const seed = 11
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.jsonl")
	cs := churnChanges(t, seed, 60, 800)

	cfg := Config{Seed: seed, WALPath: walPath, Fsync: FsyncAlways}
	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, s1, cs)
	preSeq := s1.Seq()
	s1.crash()

	// A torn append: half a record, no trailing newline.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"k":"edge-insert","e":[[1`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Recovery().TornTail {
		t.Fatal("torn tail not detected")
	}
	if got := s2.Seq(); got != preSeq {
		t.Fatalf("recovered watermark %d, want %d", got, preSeq)
	}
	refState, _ := referenceRun(t, seed, cs)
	if got := serverState(t, s2); !maps.Equal(got, refState) {
		t.Fatal("recovered state diverged after torn-tail truncation")
	}
	// The truncated WAL accepts appends again.
	mustIngest(t, s2, []dynmis.Change{dynmis.NodeChange(dynmis.NodeInsert, 100000)})
}

// TestSeedMismatchRefused: restarting a durable daemon under a different
// seed must fail loudly, not silently maintain a different structure.
func TestSeedMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 3, WALPath: filepath.Join(dir, "wal.jsonl"), SnapEvery: 10, Fsync: FsyncAlways}
	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, s1, churnChanges(t, 3, 30, 100))
	s1.Close()
	cfg.Seed = 4
	if _, err := Open(cfg); err == nil {
		t.Fatal("snapshot under seed 3 accepted by a daemon with seed 4")
	}
}

// readEvents reads NDJSON events from an open subscription until n events
// arrived or a terminal record ends the stream; it returns the events and
// the terminal record (zero if the count was reached first).
func readEvents(t *testing.T, body io.Reader, n int) ([]WireEvent, StreamEnd) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var evs []WireEvent
	for len(evs) < n && sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec struct {
			WireEvent
			End   bool   `json:"end"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("bad stream record %q: %v", raw, err)
		}
		if rec.Cause == "" {
			return evs, StreamEnd{End: rec.End, Error: rec.Error, Seq: rec.Seq}
		}
		evs = append(evs, rec.WireEvent)
	}
	return evs, StreamEnd{}
}

// subscribeFrom opens /v1/events?from=N and returns the response.
func subscribeFrom(t *testing.T, ctx context.Context, base string, from uint64) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/events?from=%d", base, from), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// checkContiguous asserts evs covers exactly (from, to] with no gaps or
// duplicates.
func checkContiguous(t *testing.T, evs []WireEvent, from, to uint64) {
	t.Helper()
	if uint64(len(evs)) != to-from {
		t.Fatalf("got %d events, want %d (seq %d..%d]", len(evs), to-from, from, to)
	}
	for i, ev := range evs {
		if want := from + uint64(i) + 1; ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
}

// TestResumeFromSeqHandoff is the satellite (d) test: a subscriber
// disconnects mid-stream and reconnects with its last seq; the
// concatenation of both connections is the identical gap-free,
// duplicate-free sequence a never-disconnected subscriber observes.
func TestResumeFromSeqHandoff(t *testing.T) {
	const seed = 5
	s, err := Open(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	cs := churnChanges(t, seed, 80, 1200)
	mustIngest(t, s, cs[:len(cs)/2])

	// Witness: one subscription held open across the whole run.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	witness := subscribeFrom(t, wctx, ts.URL, 0)
	defer witness.Body.Close()

	// Leg 1: read part of the backlog, then drop the connection.
	half := int(s.Seq() / 2)
	ctx1, cancel1 := context.WithCancel(context.Background())
	resp1 := subscribeFrom(t, ctx1, ts.URL, 0)
	leg1, _ := readEvents(t, resp1.Body, half)
	cancel1()
	resp1.Body.Close()
	checkContiguous(t, leg1, 0, uint64(half))

	// More traffic while disconnected.
	mustIngest(t, s, cs[len(cs)/2:])
	final := s.Seq()

	// Leg 2: resume from the last delivered seq.
	last := leg1[len(leg1)-1].Seq
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	resp2 := subscribeFrom(t, ctx2, ts.URL, last)
	leg2, _ := readEvents(t, resp2.Body, int(final-last))
	cancel2()
	resp2.Body.Close()
	checkContiguous(t, leg2, last, final)

	joined := append(slices.Clone(leg1), leg2...)
	checkContiguous(t, joined, 0, final)

	want, _ := readEvents(t, witness.Body, int(final))
	checkContiguous(t, want, 0, final)
	for i := range want {
		if joined[i] != want[i] {
			t.Fatalf("resumed stream diverged at %d: %+v vs %+v", i, joined[i], want[i])
		}
	}
}

// TestResumeBelowRetentionIs409: a resume position older than the
// retained history is refused with 409 so the client knows to resync
// from /v1/state instead of silently missing events.
func TestResumeBelowRetentionIs409(t *testing.T) {
	const seed = 6
	s, err := Open(Config{Seed: seed, Retain: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	mustIngest(t, s, churnChanges(t, seed, 50, 500))

	resp := subscribeFrom(t, context.Background(), ts.URL, 0)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume from 0 with retain=16: got %s, want 409", resp.Status)
	}
	var doc struct {
		Floor uint64 `json:"floor"`
		Seq   uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Floor == 0 || doc.Seq != s.Seq() {
		t.Fatalf("409 body floor=%d seq=%d, want floor>0 seq=%d", doc.Floor, doc.Seq, s.Seq())
	}

	// Resuming exactly at the floor works and is gap-free to the tip.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp2 := subscribeFrom(t, ctx, ts.URL, doc.Floor)
	defer resp2.Body.Close()
	evs, _ := readEvents(t, resp2.Body, int(doc.Seq-doc.Floor))
	checkContiguous(t, evs, doc.Floor, doc.Seq)
}

// TestGracefulShutdown is the satellite (c) test: Close drains the
// backlog to connected subscribers and ends their streams with a
// terminal record; ingestion after Close is refused as 503.
func TestGracefulShutdown(t *testing.T) {
	const seed = 8
	s, err := Open(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	mustIngest(t, s, churnChanges(t, seed, 60, 600))
	final := s.Seq()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp := subscribeFrom(t, ctx, ts.URL, 0)
	defer resp.Body.Close()

	done := make(chan struct{})
	var evs []WireEvent
	var end StreamEnd
	go func() {
		defer close(done)
		evs, end = readEvents(t, resp.Body, int(final)+1)
	}()
	// Give the subscriber a beat to connect, then shut down.
	time.Sleep(50 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	checkContiguous(t, evs, 0, final)
	if !end.End || end.Seq != final {
		t.Fatalf("terminal record %+v, want end=true seq=%d", end, final)
	}

	if _, err := s.Ingest([]dynmis.Change{dynmis.NodeChange(dynmis.NodeInsert, 1<<20)}); err != ErrClosed {
		t.Fatalf("ingest after Close: err=%v, want ErrClosed", err)
	}
	line, err := trace.MarshalChange(dynmis.NodeChange(dynmis.NodeInsert, 1<<21))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(ts.URL+"/v1/changes", "application/json", bytes.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST after Close: %s, want 503", hr.Status)
	}
}

// TestManySubscribersGapFree fans one live run out to 64 concurrent
// HTTP subscribers while ingestion is running; every subscriber must
// observe the complete, gap-free, duplicate-free sequence. Run with
// -race this is the fan-out data-race test. (The acceptance-scale
// variant — 64 subscribers over 50k+ wire-driven updates — runs in
// make serve-smoke via cmd/dynmisload.)
func TestManySubscribersGapFree(t *testing.T) {
	const (
		seed = 9
		nsub = 64
	)
	s, err := Open(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	cs := churnChanges(t, seed, 100, 2500)
	// The reference replay tells each subscriber how many events the run
	// will produce, so it can read exactly that many and hang up.
	refState, refEvents := referenceRun(t, seed, cs)

	// A few events exist before the subscribers arrive, the rest race in
	// live.
	mustIngest(t, s, cs[:50])

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: nsub}}

	errs := make(chan error, nsub)
	streams := make([][]WireEvent, nsub)
	var wg sync.WaitGroup
	for i := range nsub {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/events?from=0", nil)
			if err != nil {
				errs <- err
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
			var cursor uint64
			for cursor < refEvents && sc.Scan() {
				if len(sc.Bytes()) == 0 {
					continue
				}
				var ev WireEvent
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					errs <- err
					return
				}
				if ev.Cause == "" {
					errs <- fmt.Errorf("subscriber %d: unexpected terminal record", i)
					return
				}
				if ev.Seq != cursor+1 {
					errs <- fmt.Errorf("subscriber %d: gap at %d -> %d", i, cursor, ev.Seq)
					return
				}
				cursor = ev.Seq
				streams[i] = append(streams[i], ev)
			}
			if cursor < refEvents {
				errs <- fmt.Errorf("subscriber %d: stream ended early at %d/%d", i, cursor, refEvents)
			}
		}()
	}

	for off := 50; off < len(cs); off += 100 {
		mustIngest(t, s, cs[off:min(len(cs), off+100)])
	}
	final := s.Seq()
	if final != refEvents {
		t.Fatalf("daemon watermark %d, reference replay %d", final, refEvents)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range nsub {
		checkContiguous(t, streams[i], 0, final)
		if !slices.Equal(streams[i], streams[0]) {
			t.Fatalf("subscriber %d observed a different stream", i)
		}
	}
	// And the stream they all observed folds to the exact State.
	evs := make([]dynmis.Event, len(streams[0]))
	for i, w := range streams[0] {
		evs[i] = wireToEvent(t, w)
	}
	if got := dynmis.ReplayEvents(evs); !maps.Equal(got, refState) {
		t.Fatal("folded subscriber stream diverged from the reference state")
	}
}

// wireToEvent inverts toWire for test folding.
func wireToEvent(t *testing.T, w WireEvent) dynmis.Event {
	t.Helper()
	mem := func(s string) dynmis.Membership {
		if s == "in" {
			return dynmis.In
		}
		return dynmis.Out
	}
	var cause dynmis.EventCause
	switch w.Cause {
	case "join":
		cause = dynmis.CauseJoin
	case "leave":
		cause = dynmis.CauseLeave
	case "flip":
		cause = dynmis.CauseFlip
	default:
		t.Fatalf("unknown cause %q", w.Cause)
	}
	return dynmis.Event{Seq: w.Seq, Node: w.Node, From: mem(w.From), To: mem(w.To), Cause: cause}
}

// TestMetricszShape pins the wire names of /metricsz: the server
// counters and the embedded metrics.Counters/PerUpdate serialize under
// stable snake_case keys — dashboards key on these.
func TestMetricszShape(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Seed: 1, WALPath: filepath.Join(dir, "wal.jsonl"), Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustIngest(t, s, churnChanges(t, 1, 50, 200))

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metricsz: %d", rec.Code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"role", "seq", "changes_accepted", "changes_rejected",
		"wal_bytes", "wal_fsyncs", "snapshots",
		"events_published", "events_evicted",
		"subscribers", "subscribers_total", "subscribers_dropped",
		"engine", "engine_per_update", "memory",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/metricsz missing key %q", key)
		}
	}
	var mem map[string]json.RawMessage
	if err := json.Unmarshal(doc["memory"], &mem); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"nodes", "slots", "edges", "arena_bytes", "index_bytes",
		"spill_slab_bytes", "spill_live_bytes", "aux_bytes",
		"total_bytes", "bytes_per_node", "spill_utilization",
	} {
		if _, ok := mem[key]; !ok {
			t.Errorf("/metricsz memory missing key %q", key)
		}
	}
	var totalBytes int64
	if err := json.Unmarshal(mem["total_bytes"], &totalBytes); err != nil {
		t.Fatal(err)
	}
	if totalBytes <= 0 {
		t.Errorf("/metricsz memory total_bytes = %d, want > 0", totalBytes)
	}
	var engine map[string]json.RawMessage
	if err := json.Unmarshal(doc["engine"], &engine); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"updates", "adjustments", "flips", "cascade_steps", "touched_slots"} {
		if _, ok := engine[key]; !ok {
			t.Errorf("/metricsz engine missing key %q", key)
		}
	}
	var per map[string]float64
	if err := json.Unmarshal(doc["engine_per_update"], &per); err != nil {
		t.Fatal(err)
	}
	if _, ok := per["adjustments"]; !ok {
		t.Error("/metricsz engine_per_update missing key \"adjustments\"")
	}
	var updates uint64
	if err := json.Unmarshal(engine["updates"], &updates); err != nil {
		t.Fatal(err)
	}
	if updates == 0 {
		t.Error("engine counters not accumulating: updates == 0 after ingest")
	}
}
