package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dynmis"
)

// Replica is the read-replica role: it bootstraps from a leader's
// /v1/state, follows the leader's event stream, folds every event into a
// local membership configuration exactly as dynmis.ReplayEvents would, and
// serves the same read surface (state, MIS, events, metrics) to its own
// subscribers. Because the event stream carries the adjusted nodes — the
// paper's whole output interface — the replica's State is equal to the
// leader's at every watermark it reaches, which TestReplicaExactState
// asserts literally.
//
// Ingestion endpoints answer 403 with the leader's URL. If the replica
// falls behind the leader's retention window (409 or a lagged terminal
// record), it resyncs from /v1/state and resets its own hub, dropping its
// subscribers so they resync too — staleness is never silently papered
// over.
type Replica struct {
	leader  string
	client  *http.Client
	hub     *hub
	handler http.Handler

	mu    sync.Mutex
	state map[dynmis.NodeID]dynmis.Membership
	seq   uint64
	ready bool

	resyncs  atomic.Uint64
	eventsIn atomic.Uint64
}

// ReplicaConfig configures OpenReplica.
type ReplicaConfig struct {
	// Leader is the leader's base URL, e.g. "http://127.0.0.1:7070".
	Leader string
	// Retain bounds the replica's own event log (see Config.Retain).
	Retain int
	// Client overrides the HTTP client (tests); nil means a default with
	// no overall timeout (the event stream is long-lived).
	Client *http.Client
}

// OpenReplica builds a Replica. It performs no network I/O until Run.
func OpenReplica(cfg ReplicaConfig) *Replica {
	r := &Replica{
		leader: cfg.Leader,
		client: cfg.Client,
		hub:    newHub(0, cfg.Retain),
		state:  map[dynmis.NodeID]dynmis.Membership{},
	}
	if r.client == nil {
		r.client = &http.Client{}
	}
	r.handler = (&routes{
		role:     "replica",
		leader:   cfg.Leader,
		hub:      r.hub,
		state:    r.stateSnapshot,
		mis:      r.misSnapshot,
		metricsz: r.Metricsz,
		ingest:   nil,
	}).mux()
	return r
}

// ServeHTTP serves the replica's read-only wire surface.
func (r *Replica) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.handler.ServeHTTP(w, req)
}

// Seq returns the leader watermark the replica has caught up to.
func (r *Replica) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Ready reports whether the replica has bootstrapped at least once.
func (r *Replica) Ready() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ready
}

// Resyncs counts full state resyncs (bootstrap included).
func (r *Replica) Resyncs() uint64 { return r.resyncs.Load() }

// Run follows the leader until ctx is cancelled: bootstrap from
// /v1/state, then stream /v1/events?from=<seq>, folding each event and
// republishing it to the replica's own subscribers. Disconnects resume
// from the last applied seq; retention misses trigger a full resync.
// Run returns ctx.Err on cancellation.
func (r *Replica) Run(ctx context.Context) error {
	defer r.hub.close()
	needResync := true
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if needResync {
			if err := r.bootstrap(ctx); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				r.sleep(ctx, 100*time.Millisecond)
				continue
			}
			needResync = false
		}
		resync, err := r.follow(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		needResync = resync
		if err != nil {
			r.sleep(ctx, 100*time.Millisecond)
		}
	}
}

func (r *Replica) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// bootstrap loads the leader's full state and rebases the replica on it.
// If the replica already served history, its hub is reset (dropping local
// subscribers, who must themselves resync) unless the new state continues
// exactly where the local history ends.
func (r *Replica) bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.leader+"/v1/state", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: replica bootstrap: leader answered %s", resp.Status)
	}
	var doc StateDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("server: replica bootstrap: %w", err)
	}
	state := make(map[dynmis.NodeID]dynmis.Membership, len(doc.Nodes))
	for _, n := range doc.Nodes {
		m := dynmis.Out
		if n.InMIS {
			m = dynmis.In
		}
		state[n.Node] = m
	}
	r.mu.Lock()
	wasReady, prevSeq := r.ready, r.seq
	r.state = state
	r.seq = doc.Seq
	r.ready = true
	r.mu.Unlock()
	if !wasReady || prevSeq != doc.Seq {
		r.hub.reset(doc.Seq)
	}
	r.resyncs.Add(1)
	return nil
}

// follow consumes the leader's NDJSON event stream from the current seq.
// It returns (true, nil) when a full resync is required, (false, err) on a
// transient failure to reconnect from the same position, and (false, nil)
// when the leader ended the stream gracefully.
func (r *Replica) follow(ctx context.Context) (resync bool, err error) {
	from := r.Seq()
	url := fmt.Sprintf("%s/v1/events?from=%d", r.leader, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		// The leader no longer retains our position (it restarted with a
		// shorter retention, or we lagged): full resync.
		io.Copy(io.Discard, resp.Body)
		return true, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("server: replica follow: leader answered %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		// Events carry "cause"; terminal records carry "end" or "error".
		var rec struct {
			WireEvent
			End   bool   `json:"end"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			return false, fmt.Errorf("server: replica follow: %w", err)
		}
		switch {
		case rec.Cause != "":
			if err := r.apply(rec.WireEvent); err != nil {
				return true, err
			}
		case rec.Error != "":
			return true, nil // lagged: resync
		case rec.End:
			// Graceful leader shutdown: hold position and retry — the
			// leader may come back (the crash-recovery path).
			return false, fmt.Errorf("server: replica follow: leader ended the stream at seq %d", rec.Seq)
		default:
			return false, fmt.Errorf("server: replica follow: unrecognized record %q", raw)
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return false, err
	}
	return false, nil
}

// apply folds one leader event into the replica state — the same fold
// dynmis.ReplayEvents performs — and republishes it. A sequence gap is an
// error that forces a resync; it cannot happen over one connection (the
// leader stream is gap-free by construction) but guards the fold anyway.
func (r *Replica) apply(ev WireEvent) error {
	r.mu.Lock()
	if ev.Seq != r.seq+1 {
		have := r.seq
		r.mu.Unlock()
		return fmt.Errorf("server: replica stream gap: have seq %d, got %d", have, ev.Seq)
	}
	if ev.Cause == dynmis.CauseLeave.String() {
		delete(r.state, ev.Node)
	} else {
		m := dynmis.Out
		if ev.To == "in" {
			m = dynmis.In
		}
		r.state[ev.Node] = m
	}
	r.seq = ev.Seq
	r.mu.Unlock()
	r.eventsIn.Add(1)
	r.hub.append(ev)
	return nil
}

// stateSnapshot renders the replica state for /v1/state.
func (r *Replica) stateSnapshot() ([]StateNode, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	nodes := make([]StateNode, 0, len(r.state))
	for v, m := range r.state {
		nodes = append(nodes, StateNode{Node: v, InMIS: m == dynmis.In})
	}
	slices.SortFunc(nodes, func(a, b StateNode) int {
		return int(a.Node - b.Node)
	})
	return nodes, r.seq
}

// misSnapshot renders the replica's MIS view for /v1/mis.
func (r *Replica) misSnapshot() ([]dynmis.NodeID, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var mis []dynmis.NodeID
	for v, m := range r.state {
		if m == dynmis.In {
			mis = append(mis, v)
		}
	}
	slices.Sort(mis)
	return mis, r.seq
}

// Metricsz snapshots the replica's serving counters.
func (r *Replica) Metricsz() Metricsz {
	published, evicted, subsNow, subsTotal, subsDropped := r.hub.snapshotCounters()
	r.mu.Lock()
	seq := r.seq
	r.mu.Unlock()
	return Metricsz{
		Role:               "replica",
		Seq:                seq,
		ChangesAccepted:    r.eventsIn.Load(),
		EventsPublished:    published,
		EventsEvicted:      evicted,
		Subscribers:        subsNow,
		SubscribersTotal:   subsTotal,
		SubscribersDropped: subsDropped,
		LeaderResyncs:      r.resyncs.Load(),
	}
}
