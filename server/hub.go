package server

import (
	"context"
	"errors"
	"sync"

	"dynmis"
)

// WireEvent is the membership event as it travels the wire: the fields of
// dynmis.Event with memberships and cause as strings, plus the server
// wall-clock publication time — the field subscriber-visible latency is
// measured against. Seq is the daemon's logical sequence number: it keeps
// counting across crash recovery, so a subscriber's resume cursor means
// the same thing before and after a restart.
type WireEvent struct {
	Seq   uint64        `json:"seq"`
	Node  dynmis.NodeID `json:"node"`
	From  string        `json:"from"`
	To    string        `json:"to"`
	Cause string        `json:"cause"`
	TS    int64         `json:"ts,omitempty"` // unix nanoseconds at publication
}

// membershipWire renders a membership for the wire.
func membershipWire(m dynmis.Membership) string {
	if m == dynmis.In {
		return "in"
	}
	return "out"
}

// toWire converts a feed event (already rebased to the logical sequence)
// into its wire form.
func toWire(ev dynmis.Event, ts int64) WireEvent {
	return WireEvent{
		Seq:   ev.Seq,
		Node:  ev.Node,
		From:  membershipWire(ev.From),
		To:    membershipWire(ev.To),
		Cause: ev.Cause.String(),
		TS:    ts,
	}
}

// Terminal stream conditions, delivered to subscribers as typed errors and
// rendered by the handlers as terminal wire records.
var (
	// errLagged: the subscriber fell behind the retention window — its next
	// event was evicted. The client must resync from /v1/state.
	errLagged = errors.New("subscriber lagged behind the retention window")
	// errTruncated: the requested resume position predates the retained
	// history (e.g. events from before the last crash recovery).
	errTruncated = errors.New("event history truncated before the requested position")
	// errHubClosed: the daemon is shutting down; the backlog was delivered
	// in full before this was reported.
	errHubClosed = errors.New("event stream closed")
)

// hub is the subscriber fan-out: an append-only, seq-contiguous event log
// plus any number of cursor-based readers. Writers append under the lock;
// each subscriber runs its own goroutine that copies batches of the log
// out under the lock and writes them to its client outside it, so one slow
// client never blocks the ingest path or the other subscribers.
//
// Retention bounds memory: with retain > 0 the log keeps only the newest
// retain events, and a subscriber whose cursor falls below the floor is
// dropped with errLagged — the slow-consumer policy. Dropping means
// *disconnecting*, never silently skipping events: a resumed client either
// observes the gap-free sequence or is told to resync.
type hub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	log    []WireEvent // events floor+1 .. floor+len(log), contiguous
	floor  uint64      // seq of the newest event no longer retained
	retain int         // max retained events; 0 = unlimited
	closed bool

	subscribers int // currently connected

	// counters, read by /metricsz (under mu)
	published   uint64 // events ever appended
	evicted     uint64 // events dropped from retention
	subsTotal   uint64 // subscribers ever accepted
	subsDropped uint64 // subscribers dropped as lagged
}

// newHub returns a hub whose log starts just above floor: the first
// appended event receives seq floor+1. A leader recovering from a
// snapshot passes its recovered watermark; a fresh daemon passes 0.
func newHub(floor uint64, retain int) *hub {
	h := &hub{floor: floor, retain: retain}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// append adds one event to the log. ev.Seq must be exactly watermark+1 —
// the caller (the feed rebasing subscription, or the replica's leader
// stream after a contiguity check) guarantees it.
func (h *hub) append(ev WireEvent) {
	h.mu.Lock()
	h.log = append(h.log, ev)
	h.published++
	if h.retain > 0 && len(h.log) > h.retain {
		drop := len(h.log) - h.retain
		h.log = h.log[drop:]
		h.floor += uint64(drop)
		h.evicted += uint64(drop)
	}
	h.mu.Unlock()
	h.cond.Broadcast()
}

// watermark returns the seq of the newest published event.
func (h *hub) watermark() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.floor + uint64(len(h.log))
}

// bounds returns the retention floor and the watermark together.
func (h *hub) bounds() (floor, watermark uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.floor, h.floor + uint64(len(h.log))
}

// close ends every subscription: each subscriber drains the backlog it has
// not yet delivered, then returns errHubClosed so its handler can emit a
// terminal record. Further appends are rejected by the callers (ingest is
// already stopped when close runs).
func (h *hub) close() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// reset discards the log and restarts it above floor, dropping every
// subscriber as lagged. The replica uses it when a leader resync makes
// its local history non-contiguous.
func (h *hub) reset(floor uint64) {
	h.mu.Lock()
	h.log = nil
	h.floor = floor
	h.mu.Unlock()
	h.cond.Broadcast()
}

// stream delivers every event with seq > from to send, in order, without
// gaps or duplicates: first the retained backlog, then live events as they
// are appended, batched under one lock acquisition per wake-up. It returns
// errTruncated immediately if from is below the retention floor,
// errLagged if the cursor is evicted mid-stream, errHubClosed after the
// hub shuts down (backlog fully delivered first), a send error as-is, or
// ctx.Err. send runs outside the hub lock.
func (h *hub) stream(ctx context.Context, from uint64, batch int, send func([]WireEvent) error) error {
	if batch <= 0 {
		batch = 512
	}
	// A context watcher wakes the cond wait so a departed client releases
	// its goroutine promptly.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			h.cond.Broadcast()
		case <-done:
		}
	}()

	h.mu.Lock()
	h.subsTotal++
	h.subscribers++
	defer func() {
		h.subscribers--
		h.mu.Unlock()
	}()
	if from < h.floor {
		return errTruncated
	}
	cursor := from
	buf := make([]WireEvent, 0, batch)
	for {
		for cursor >= h.floor+uint64(len(h.log)) && !h.closed && ctx.Err() == nil {
			h.cond.Wait()
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if cursor < h.floor {
			h.subsDropped++
			return errLagged
		}
		if cursor >= h.floor+uint64(len(h.log)) {
			// Closed with the backlog drained.
			return errHubClosed
		}
		lo := int(cursor - h.floor)
		hi := min(len(h.log), lo+batch)
		buf = append(buf[:0], h.log[lo:hi]...)
		cursor += uint64(hi - lo)

		h.mu.Unlock()
		err := send(buf)
		h.mu.Lock()
		if err != nil {
			return err
		}
	}
}

// snapshotCounters returns the hub's counter block for /metricsz.
func (h *hub) snapshotCounters() (published, evicted, subsNow, subsTotal, subsDropped uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.published, h.evicted, uint64(h.subscribers), h.subsTotal, h.subsDropped
}
