package server

import (
	"context"
	"encoding/json"
	"io"
	"maps"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dynmis"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func replicaState(r *Replica) map[dynmis.NodeID]dynmis.Membership {
	nodes, _ := r.stateSnapshot()
	state := make(map[dynmis.NodeID]dynmis.Membership, len(nodes))
	for _, n := range nodes {
		m := dynmis.Out
		if n.InMIS {
			m = dynmis.In
		}
		state[n.Node] = m
	}
	return state
}

// TestReplicaExactState: a replica that bootstraps from a mid-history
// leader and then follows its event stream holds the leader's exact
// State at every watermark it reaches — including across more live
// traffic — and serves it with the leader's seq.
func TestReplicaExactState(t *testing.T) {
	const seed = 21
	s, err := Open(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	cs := churnChanges(t, seed, 90, 1500)
	// History exists before the replica is born: it must bootstrap, not
	// replay from zero.
	mustIngest(t, s, cs[:len(cs)/3])

	rep := OpenReplica(ReplicaConfig{Leader: ts.URL})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() { defer close(runDone); rep.Run(ctx) }()

	waitFor(t, 5*time.Second, rep.Ready, "replica bootstrap")
	mustIngest(t, s, cs[len(cs)/3:])
	final := s.Seq()
	waitFor(t, 10*time.Second, func() bool { return rep.Seq() == final }, "replica catch-up")

	if got, want := replicaState(rep), serverState(t, s); !maps.Equal(got, want) {
		t.Fatalf("replica state diverged from leader:\n got %v\nwant %v", got, want)
	}

	// The replica serves the same read surface: /v1/state and /v1/mis
	// match the leader's byte for byte at the same watermark.
	rts := httptest.NewServer(rep)
	defer rts.Close()
	for _, path := range []string{"/v1/state", "/v1/mis"} {
		lead := getBody(t, ts.URL+path)
		repl := getBody(t, rts.URL+path)
		// The docs differ only in the role field.
		var lv, rv map[string]any
		json.Unmarshal(lead, &lv)
		json.Unmarshal(repl, &rv)
		delete(lv, "role")
		delete(rv, "role")
		lj, _ := json.Marshal(lv)
		rj, _ := json.Marshal(rv)
		if string(lj) != string(rj) {
			t.Fatalf("%s diverged:\nleader  %s\nreplica %s", path, lj, rj)
		}
	}

	// A subscriber on the *replica* sees the gap-free tail of the run.
	floor, _ := rep.hub.bounds()
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	resp := subscribeFrom(t, sctx, rts.URL, floor)
	defer resp.Body.Close()
	evs, _ := readEvents(t, resp.Body, int(final-floor))
	checkContiguous(t, evs, floor, final)

	// Ingestion on the replica is refused with the leader's address.
	hr, err := http.Post(rts.URL+"/v1/changes", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusForbidden {
		t.Fatalf("replica ingest: %s, want 403", hr.Status)
	}
	var doc struct {
		Leader string `json:"leader"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Leader != ts.URL {
		t.Fatalf("403 points at %q, want %q", doc.Leader, ts.URL)
	}

	cancel()
	<-runDone
}

// TestReplicaResyncAfterRetentionLoss scripts a leader that answers the
// replica's first resume with 409 (its position aged out of retention):
// the replica must bootstrap again from /v1/state — resetting its own
// hub so its subscribers can't be served a gapped history — and then
// follow the new stream.
func TestReplicaResyncAfterRetentionLoss(t *testing.T) {
	var mu sync.Mutex
	stateCalls, conflicts := 0, 0
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/state", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		stateCalls++
		n := stateCalls
		mu.Unlock()
		doc := StateDoc{Schema: StateSchema, Role: "leader", Seq: 100, Nodes: []StateNode{{Node: 1, InMIS: true}}}
		if n > 1 {
			// After the 409 the leader is far ahead with different state.
			doc.Seq = 200
			doc.Nodes = []StateNode{{Node: 2, InMIS: true}, {Node: 3, InMIS: false}}
		}
		writeJSON(w, http.StatusOK, doc)
	})
	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, r *http.Request) {
		from := r.URL.Query().Get("from")
		if from == "100" {
			mu.Lock()
			conflicts++
			mu.Unlock()
			writeJSON(w, http.StatusConflict, errorDoc{Error: errTruncated.Error(), Floor: 150, Seq: 200})
			return
		}
		if from != "200" {
			t.Errorf("unexpected resume position %q", from)
			writeJSON(w, http.StatusConflict, errorDoc{Error: "unexpected"})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		for _, ev := range []WireEvent{
			{Seq: 201, Node: 3, From: "out", To: "in", Cause: "flip"},
			{Seq: 202, Node: 4, From: "out", To: "in", Cause: "join"},
		} {
			data, _ := json.Marshal(ev)
			w.Write(data)
			w.Write([]byte("\n"))
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Hold the stream open until the client leaves.
		<-r.Context().Done()
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep := OpenReplica(ReplicaConfig{Leader: ts.URL})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() { defer close(runDone); rep.Run(ctx) }()

	waitFor(t, 5*time.Second, func() bool { return rep.Seq() == 202 }, "replica to fold the post-resync stream")
	if got := rep.Resyncs(); got != 2 {
		t.Fatalf("resyncs = %d, want 2 (bootstrap + retention loss)", got)
	}
	mu.Lock()
	if conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", conflicts)
	}
	mu.Unlock()
	want := map[dynmis.NodeID]dynmis.Membership{2: dynmis.In, 3: dynmis.In, 4: dynmis.In}
	if got := replicaState(rep); !maps.Equal(got, want) {
		t.Fatalf("replica state after resync: %v, want %v", got, want)
	}
	// The resync reset the replica's own hub: it restarts at the new
	// bootstrap seq, so a local subscriber cannot span the gap.
	if floor, watermark := rep.hub.bounds(); floor != 200 || watermark != 202 {
		t.Fatalf("replica hub bounds (%d, %d], want (200, 202]", floor, watermark)
	}

	cancel()
	<-runDone
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body
}
