// Package server is the network-facing layer of the dynmis reproduction:
// a stdlib-only daemon core that ingests topology changes over HTTP,
// pushes the resulting membership events to any number of concurrent
// subscribers, and makes the maintained structure durable with a
// write-ahead log plus periodic snapshots.
//
// The design follows the paper's point. Because a change adjusts a single
// node in expectation (Theorem 1), clients should never re-poll MIS() —
// the daemon streams them exactly the adjusted nodes as dynmis Events,
// with a logical sequence number that survives crashes, so a client (or a
// read replica) that folds the stream with ReplayEvents always holds the
// exact State.
//
// Durability composes three existing properties instead of inventing a
// storage engine: the dynmis/trace format is byte-canonical JSONL, so the
// WAL is just a trace file any tool can replay; history independence
// means replaying the WAL from the empty graph reproduces the structure
// exactly; and dynmis.RestoreAt repositions the priority stream, so
// snapshot + WAL-tail replay is bit-identical to an uninterrupted run.
// Recovery tolerates a torn final WAL line (a crash mid-append) by
// truncating it — under FsyncAlways that record was never acknowledged.
//
// A Server is the leader role; a Replica follows a leader's event stream
// and serves the same read surface with exact State equality. Both expose
// the wire protocol documented in docs/WIRE.md.
package server

import (
	"cmp"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dynmis"
	"dynmis/metrics"
)

// SnapshotSchema identifies the snapshot-file format: snapshot metadata
// (logical seq watermark, WAL position, priority-stream position) around
// a core engine snapshot.
const SnapshotSchema = "dynmis-snap/v1"

// ErrClosed is returned by ingestion once shutdown has begun.
var ErrClosed = errors.New("server: shutting down")

// Config configures Open.
type Config struct {
	// Engine selects the backing engine; it must support snapshots when a
	// WAL is configured. Zero selects dynmis.EngineTemplate, the fastest
	// per-change path.
	Engine dynmis.Engine
	// Shards is the shard count for dynmis.EngineSharded.
	Shards int
	// Seed is the engine seed. Restarting a durable daemon requires the
	// same seed — replaying the WAL under a different priority stream
	// would maintain a different (if equally valid) structure, and the
	// snapshot loader rejects the mismatch.
	Seed uint64
	// WALPath is the write-ahead log file; empty runs the daemon
	// in-memory (no durability, no recovery).
	WALPath string
	// SnapPath is the snapshot file; empty defaults to WALPath + ".snap".
	SnapPath string
	// SnapEvery takes a snapshot after this many accepted changes
	// (0 disables periodic snapshots; one is still written on shutdown).
	SnapEvery int
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval ticker period.
	FsyncInterval time.Duration
	// Retain bounds the in-memory event log serving resume-from-Seq; 0
	// keeps everything since startup. A subscriber that falls more than
	// Retain events behind is disconnected (the slow-consumer policy) and
	// must resync from /v1/state.
	Retain int
	// Now overrides the event-timestamp clock (tests); nil means time.Now.
	Now func() time.Time
}

// engineOptions renders the config's engine choice as facade options.
func (c Config) engineOptions() []dynmis.Option {
	opts := []dynmis.Option{dynmis.WithInstrumentation()}
	switch c.Engine {
	case 0, dynmis.EngineTemplate:
		opts = append(opts, dynmis.WithEngine(dynmis.EngineTemplate))
	case dynmis.EngineSharded:
		opts = append(opts, dynmis.WithEngine(dynmis.EngineSharded))
		if c.Shards > 0 {
			opts = append(opts, dynmis.WithShards(c.Shards))
		}
	default:
		opts = append(opts, dynmis.WithEngine(c.Engine))
	}
	return opts
}

// snapFile is the on-disk snapshot: metadata locating the snapshot in the
// logical history plus the engine image itself.
type snapFile struct {
	Schema string `json:"schema"`
	Seed   uint64 `json:"seed"`
	// Seq is the logical event watermark at the moment of the snapshot.
	Seq uint64 `json:"seq"`
	// Applied is how many WAL changes the snapshot already includes; the
	// WAL tail from this position replays the rest.
	Applied uint64 `json:"applied"`
	// Draws is the priority-stream position for dynmis.RestoreAt.
	Draws    uint64           `json:"draws"`
	Snapshot *dynmis.Snapshot `json:"snapshot"`
}

// RecoveryInfo says how a durable server came up.
type RecoveryInfo struct {
	FromSnapshot bool   `json:"from_snapshot"`
	SnapshotSeq  uint64 `json:"snapshot_seq"`
	WALChanges   uint64 `json:"wal_changes"`
	TailReplayed uint64 `json:"tail_replayed"`
	TornTail     bool   `json:"torn_tail"`
}

// Server is the leader daemon core: engine + WAL + snapshots + event hub,
// exposed as an http.Handler (see routes in handlers.go). All engine
// access is serialized by mu; the event fan-out runs outside it.
type Server struct {
	cfg      Config
	hub      *hub
	handler  http.Handler
	now      func() time.Time
	recovery RecoveryInfo

	mu        sync.Mutex
	m         *dynmis.Maintainer
	wal       *wal
	baseSeq   uint64 // logical seq of the restored snapshot (rebase offset)
	applied   uint64 // total changes in the WAL (== accepted since birth)
	sinceSnap int
	closed    bool
	broken    error // a WAL write failure poisons the server

	accepted  atomic.Uint64
	rejected  atomic.Uint64
	snapshots atomic.Uint64
}

// Open builds a Server, recovering from the configured WAL and snapshot
// if they exist: the snapshot (when present) restores the engine and the
// priority-stream position, the WAL tail replays through the normal Drive
// path (republishing its events into the hub with rebased sequence
// numbers), and the WAL is reopened for appending — with a torn final
// line truncated first.
func Open(cfg Config) (*Server, error) {
	if cfg.SnapPath == "" && cfg.WALPath != "" {
		cfg.SnapPath = cfg.WALPath + ".snap"
	}
	s := &Server{cfg: cfg, now: cfg.Now}
	if s.now == nil {
		s.now = time.Now
	}

	var (
		walChanges []dynmis.Change
		snap       *snapFile
		err        error
	)
	if cfg.WALPath != "" {
		snap, err = loadSnapshot(cfg.SnapPath, cfg.Seed)
		if err != nil {
			return nil, err
		}
		walChanges, s.recovery.TornTail, err = recoverWAL(cfg.WALPath)
		if err != nil {
			return nil, err
		}
		s.recovery.WALChanges = uint64(len(walChanges))
	}

	tail := walChanges
	if snap != nil {
		if snap.Applied > uint64(len(walChanges)) {
			return nil, fmt.Errorf("server: snapshot is ahead of the wal (%d > %d changes): wal truncated externally?",
				snap.Applied, len(walChanges))
		}
		s.m, err = dynmis.RestoreAt(snap.Snapshot, cfg.Seed, snap.Draws, cfg.engineOptions()...)
		if err != nil {
			return nil, fmt.Errorf("server: restore snapshot: %w", err)
		}
		s.baseSeq = snap.Seq
		tail = walChanges[snap.Applied:]
		s.recovery.FromSnapshot = true
		s.recovery.SnapshotSeq = snap.Seq
	} else {
		s.m, err = dynmis.New(append(cfg.engineOptions(), dynmis.WithSeed(cfg.Seed))...)
		if err != nil {
			return nil, err
		}
	}

	s.hub = newHub(s.baseSeq, cfg.Retain)
	// The one feed subscription: every engine event, rebased to the
	// logical sequence, is appended to the hub — during WAL-tail replay
	// just as during live ingest.
	s.m.Subscribe(func(ev dynmis.Event) {
		ev.Seq += s.baseSeq
		s.hub.append(toWire(ev, s.now().UnixNano()))
	})

	// Replay the tail change by change — the daemon's one application
	// granularity, so the event sequence is identical however the changes
	// originally arrived.
	for i, c := range tail {
		if _, err := s.m.Apply(c); err != nil {
			return nil, fmt.Errorf("server: wal replay: change %d: %w", int(snapApplied(snap))+i, err)
		}
	}
	s.recovery.TailReplayed = uint64(len(tail))
	s.applied = uint64(len(walChanges))
	if err := s.m.Check(); err != nil {
		return nil, fmt.Errorf("server: recovered structure is invalid: %w", err)
	}

	if cfg.WALPath != "" {
		s.wal, err = openWAL(cfg.WALPath, cfg.Fsync, cfg.FsyncInterval)
		if err != nil {
			return nil, err
		}
	}

	s.handler = (&routes{
		role:     "leader",
		hub:      s.hub,
		state:    s.stateSnapshot,
		mis:      s.misSnapshot,
		metricsz: s.Metricsz,
		ingest:   s.Ingest,
	}).mux()
	return s, nil
}

// snapApplied is snap.Applied with nil meaning 0.
func snapApplied(snap *snapFile) uint64 {
	if snap == nil {
		return 0
	}
	return snap.Applied
}

// loadSnapshot reads and validates a snapshot file; a missing file is nil.
func loadSnapshot(path string, seed uint64) (*snapFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: read snapshot: %w", err)
	}
	var snap snapFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("server: snapshot %s is corrupt: %w", path, err)
	}
	if snap.Schema != SnapshotSchema {
		return nil, fmt.Errorf("server: snapshot %s: unsupported schema %q, want %q", path, snap.Schema, SnapshotSchema)
	}
	if snap.Seed != seed {
		return nil, fmt.Errorf("server: snapshot %s was taken under seed %d, daemon started with %d: refusing to diverge",
			path, snap.Seed, seed)
	}
	if snap.Snapshot == nil {
		return nil, fmt.Errorf("server: snapshot %s carries no engine image", path)
	}
	return &snap, nil
}

// ServeHTTP serves the wire protocol of docs/WIRE.md.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Seq returns the logical event watermark.
func (s *Server) Seq() uint64 { return s.hub.watermark() }

// Recovery reports how this server instance came up.
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// IngestResult is the acknowledgment of one ingest call: how many changes
// were accepted (applied, WAL-appended and — under FsyncAlways — fsynced)
// and rejected (invalid against the current topology), and the logical
// event watermark after the batch.
type IngestResult struct {
	Accepted int      `json:"accepted"`
	Rejected int      `json:"rejected"`
	Seq      uint64   `json:"seq"`
	Errors   []string `json:"errors,omitempty"`
}

// maxIngestErrors caps the per-request rejection detail.
const maxIngestErrors = 16

// Ingest applies a batch of changes: each change is validated and applied
// by the engine (publishing its events), appended to the WAL, and the
// batch is acknowledged after one durability point — so a batched request
// amortizes its fsync over all its changes. Invalid changes are rejected
// individually without poisoning the batch; rejected changes never reach
// the WAL, which keeps the log replayable end to end. A WAL write failure
// is fatal: the server refuses further ingestion rather than acknowledge
// what it cannot make durable.
func (s *Server) Ingest(cs []dynmis.Change) (IngestResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res IngestResult
	if s.closed {
		res.Seq = s.hub.watermark()
		return res, ErrClosed
	}
	if s.broken != nil {
		res.Seq = s.hub.watermark()
		return res, s.broken
	}
	for _, c := range cs {
		if _, err := s.m.Apply(c); err != nil {
			res.Rejected++
			if len(res.Errors) < maxIngestErrors {
				res.Errors = append(res.Errors, err.Error())
			}
			continue
		}
		if s.wal != nil {
			if err := s.wal.write(c); err != nil {
				// The engine applied the change but the log did not record
				// it: acknowledging anything further would break the
				// WAL-replay equivalence. Poison the server.
				s.broken = err
				res.Seq = s.hub.watermark()
				return res, err
			}
		}
		res.Accepted++
		s.applied++
	}
	if res.Accepted > 0 && s.wal != nil {
		if err := s.wal.commit(); err != nil {
			s.broken = err
			res.Seq = s.hub.watermark()
			return res, err
		}
	}
	s.accepted.Add(uint64(res.Accepted))
	s.rejected.Add(uint64(res.Rejected))
	res.Seq = s.hub.watermark()

	if s.cfg.SnapEvery > 0 {
		s.sinceSnap += res.Accepted
		if s.sinceSnap >= s.cfg.SnapEvery {
			if err := s.writeSnapshotLocked(); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// writeSnapshotLocked captures the engine image plus its logical position
// and atomically replaces the snapshot file. The WAL is fsynced first so
// the snapshot's Applied position is never ahead of the durable log.
func (s *Server) writeSnapshotLocked() error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.sync(); err != nil {
		s.broken = err
		return err
	}
	img, err := s.m.Snapshot()
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	snap := snapFile{
		Schema:   SnapshotSchema,
		Seed:     s.cfg.Seed,
		Seq:      s.hub.watermark(),
		Applied:  s.applied,
		Draws:    s.m.PriorityDraws(),
		Snapshot: img,
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	tmp := s.cfg.SnapPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.cfg.SnapPath); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	s.snapshots.Add(1)
	s.sinceSnap = 0
	return nil
}

// stateSnapshot renders the full membership configuration with the
// watermark it is consistent with.
func (s *Server) stateSnapshot() ([]StateNode, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	state := s.m.State()
	nodes := make([]StateNode, 0, len(state))
	for v, m := range state {
		nodes = append(nodes, StateNode{Node: v, InMIS: m == dynmis.In})
	}
	slices.SortFunc(nodes, func(a, b StateNode) int {
		return cmp.Compare(a.Node, b.Node)
	})
	return nodes, s.hub.watermark()
}

// misSnapshot renders the sorted MIS with its watermark.
func (s *Server) misSnapshot() ([]dynmis.NodeID, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.MIS(), s.hub.watermark()
}

// Metricsz is the /metricsz document: the daemon's serving counters
// around the engine's complexity account (dynmis/metrics).
type Metricsz struct {
	Role string `json:"role"`
	Seq  uint64 `json:"seq"`

	ChangesAccepted uint64 `json:"changes_accepted"`
	ChangesRejected uint64 `json:"changes_rejected"`
	WALBytes        int64  `json:"wal_bytes"`
	WALFsyncs       uint64 `json:"wal_fsyncs"`
	Snapshots       uint64 `json:"snapshots"`

	EventsPublished    uint64 `json:"events_published"`
	EventsEvicted      uint64 `json:"events_evicted"`
	Subscribers        uint64 `json:"subscribers"`
	SubscribersTotal   uint64 `json:"subscribers_total"`
	SubscribersDropped uint64 `json:"subscribers_dropped"`
	LeaderResyncs      uint64 `json:"leader_resyncs,omitempty"`

	Engine          *metrics.Counters  `json:"engine,omitempty"`
	EnginePerUpdate *metrics.PerUpdate `json:"engine_per_update,omitempty"`
	// Memory is the engine's live retained-bytes account (bytes/node,
	// spill-pool utilization, …) when the engine implements the
	// memory-reporting capability; absent on replicas, whose state is a
	// plain membership map rather than an arena.
	Memory *metrics.Memory `json:"memory,omitempty"`
}

// Metricsz snapshots the serving counters and the engine's complexity
// counters (the same numbers cmd/validate tabulates, here live).
func (s *Server) Metricsz() Metricsz {
	published, evicted, subsNow, subsTotal, subsDropped := s.hub.snapshotCounters()
	mz := Metricsz{
		Role:               "leader",
		Seq:                s.hub.watermark(),
		ChangesAccepted:    s.accepted.Load(),
		ChangesRejected:    s.rejected.Load(),
		Snapshots:          s.snapshots.Load(),
		EventsPublished:    published,
		EventsEvicted:      evicted,
		Subscribers:        subsNow,
		SubscribersTotal:   subsTotal,
		SubscribersDropped: subsDropped,
	}
	s.mu.Lock()
	if s.wal != nil {
		mz.WALBytes = s.wal.bytes()
		mz.WALFsyncs = s.wal.fsyncs.Load()
	}
	if ctr, ok := s.m.Metrics(); ok {
		per := ctr.PerUpdate()
		mz.Engine, mz.EnginePerUpdate = &ctr, &per
	}
	if mem, ok := s.m.MemoryProfile(); ok {
		mz.Memory = &mem
	}
	s.mu.Unlock()
	return mz
}

// Close shuts the server down gracefully: in-flight ingestion finishes
// (further calls get ErrClosed), a final snapshot is written when
// periodic snapshots are configured, the WAL is fsynced and closed, and
// every subscriber stream drains its backlog and ends with a terminal
// record. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.cfg.SnapEvery > 0 && s.sinceSnap > 0 && s.broken == nil {
		err = s.writeSnapshotLocked()
	}
	if s.wal != nil {
		if cerr := s.wal.close(); err == nil {
			err = cerr
		}
		s.wal = nil
	}
	s.mu.Unlock()
	s.hub.close()
	return err
}
