package dynmis

// Fuzz wall for the competitor engines: the independent engines
// (gupta-khan, aoss) and the sequential structure are not held to byte
// equality with the template, so differential tests alone cannot catch
// their failure modes. This target drives arbitrary sanitized change
// streams through all three in arbitrary batch windows and checks the
// properties that ARE their contract: the MIS invariant after every
// window, the feed replay guarantee, and slot recycling (delete and
// re-insert of a live node must leave a consistent structure with the
// topology unchanged).

import (
	"bytes"
	"math/rand/v2"
	"slices"
	"testing"

	"dynmis/internal/core"
	"dynmis/trace"
	"dynmis/workload"
)

// fuzzCompetitorMax bounds one fuzz execution so the per-window
// invariant checks stay fast enough for the mutator to explore broadly.
const fuzzCompetitorMax = 1500

// decodeCompetitorStream turns raw fuzz bytes into a change stream that
// is valid when applied in order from the empty graph — the same idiom
// as the sharded engine's fuzz wall. Bytes that parse as a JSONL trace
// are taken as-is; anything else goes through a byte-op decoder over a
// small ID space. Either way the stream is filtered through a scratch
// template engine so only changes that stage cleanly survive, and the
// target compares behaviour, not error strings.
func decodeCompetitorStream(data []byte) []Change {
	cs, err := trace.ReadAll(bytes.NewReader(data))
	if err != nil || len(cs) == 0 {
		cs = cs[:0]
		for i := 0; i+2 < len(data) && len(cs) < fuzzCompetitorMax; i += 3 {
			u := NodeID(data[i+1] % 48)
			v := NodeID(data[i+2] % 48)
			switch data[i] % 8 {
			case 0:
				cs = append(cs, NodeChange(NodeInsert, u))
			case 1:
				cs = append(cs, NodeChange(NodeInsert, u, v))
			case 2:
				cs = append(cs, NodeChange(NodeDeleteAbrupt, u))
			case 3:
				cs = append(cs, NodeChange(NodeDeleteGraceful, u))
			case 4:
				cs = append(cs, EdgeChange(EdgeInsert, u, v))
			case 5:
				cs = append(cs, EdgeChange(EdgeDeleteAbrupt, u, v))
			case 6:
				cs = append(cs, NodeChange(NodeMute, u))
			case 7:
				cs = append(cs, NodeChange(NodeUnmute, u, v))
			}
		}
	}
	if len(cs) > fuzzCompetitorMax {
		cs = cs[:fuzzCompetitorMax]
	}
	scratch := core.NewTemplate(1)
	valid := cs[:0]
	for _, c := range cs {
		if _, err := scratch.Apply(c); err == nil {
			valid = append(valid, c)
		}
	}
	return valid
}

// FuzzCompetitorInvariant fuzzes the tier-2 contract of the engine
// matrix: for any valid change stream and any batch window, each
// single-machine engine holds the MIS invariant and the greedy
// certificate after every window, its published feed folds back to
// State() at every window boundary, and recycling a live node
// (abrupt delete, then re-insert with the identical neighborhood)
// between windows neither breaks the invariant nor loses topology.
func FuzzCompetitorInvariant(f *testing.F) {
	// Corpus: real workload streams in trace encoding, so the mutator
	// starts from structurally meaningful inputs.
	seedStream := func(cs []Change) []byte {
		var buf bytes.Buffer
		if err := trace.WriteAll(&buf, slices.Values(cs)); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	rng := rand.New(rand.NewPCG(71, 73))
	gnp := workload.GNP(rng, 40, 0.1)
	churn := append(slices.Clone(gnp), workload.RandomChurn(rng, workload.BuildGraph(gnp), workload.DefaultChurn(300))...)
	f.Add(seedStream(gnp), uint64(42), uint8(16))
	f.Add(seedStream(churn), uint64(7), uint8(7))
	f.Add(seedStream(workload.Cycle(32)), uint64(3), uint8(5))
	f.Add([]byte{0, 1, 0, 0, 2, 0, 4, 1, 2, 1, 3, 1, 6, 1, 0, 7, 1, 2}, uint64(1), uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, seed uint64, windowB uint8) {
		cs := decodeCompetitorStream(data)
		if len(cs) == 0 {
			t.Skip("no valid changes decoded")
		}
		window := int(windowB)%32 + 1

		for _, eng := range []Engine{EngineSequential, EngineGuptaKhan, EngineAOSS} {
			m, err := New(WithSeed(seed), WithEngine(eng))
			if err != nil {
				t.Fatal(err)
			}
			var events []Event
			m.Subscribe(func(ev Event) { events = append(events, ev) })

			for lo := 0; lo < len(cs); lo += window {
				hi := min(lo+window, len(cs))
				if _, err := m.ApplyBatch(cs[lo:hi]); err != nil {
					t.Fatalf("%v: window at %d: %v", eng, lo, err)
				}
				if err := m.Check(); err != nil {
					t.Fatalf("%v: invariant after window at %d (window=%d): %v", eng, lo, window, err)
				}
				if state := ReplayEvents(events); !core.EqualStates(state, m.State()) {
					t.Fatalf("%v: feed replay diverges from State() after window at %d", eng, lo)
				}

				// Recycle oracle: delete a live node and re-insert it
				// with the identical neighborhood. The topology is
				// unchanged, so the rest of the sanitized stream stays
				// valid; the structure must survive the slot reuse.
				if nodes := m.Nodes(); len(nodes) > 0 {
					v := nodes[int(seed+uint64(lo))%len(nodes)]
					nbrs := m.impl.Graph().Neighbors(v)
					if _, err := m.RemoveNodeAbrupt(v); err != nil {
						t.Fatalf("%v: recycle delete %d: %v", eng, v, err)
					}
					if _, err := m.InsertNode(v, nbrs...); err != nil {
						t.Fatalf("%v: recycle re-insert %d: %v", eng, v, err)
					}
					if err := m.Check(); err != nil {
						t.Fatalf("%v: invariant after recycling %d: %v", eng, v, err)
					}
					if m.impl.Graph().Degree(v) != len(nbrs) {
						t.Fatalf("%v: recycling %d lost topology: degree %d, want %d",
							eng, v, m.impl.Graph().Degree(v), len(nbrs))
					}
				}
			}

			if err := m.Verify(); err != nil {
				t.Fatalf("%v: greedy certificate after full stream: %v", eng, err)
			}
			if state := ReplayEvents(events); !core.EqualStates(state, m.State()) {
				t.Fatalf("%v: final feed replay diverges from State()", eng)
			}
		}
	})
}
