package dynmis_test

import (
	"context"
	"slices"
	"testing"

	"dynmis"
)

// memoryEngines is the arena-backed matrix: every engine here maintains
// its state in the shared slot arena and implements the
// memory-reporting capability.
var memoryEngines = []dynmis.Engine{
	dynmis.EngineTemplate,
	dynmis.EngineSharded,
	dynmis.EngineSequential,
	dynmis.EngineGuptaKhan,
	dynmis.EngineAOSS,
}

// TestMemoryProfileAcrossEngines checks the memory-accounting thread
// end to end at the facade: arena-backed engines report a coherent
// retained-bytes account after a drive, the message-passing engines
// decline the capability, and the account reacts to churn (bytes track
// the live structure, not the insertion history).
func TestMemoryProfileAcrossEngines(t *testing.T) {
	cs := churnStream(23, 80, 600)

	for _, e := range memoryEngines {
		t.Run(e.String(), func(t *testing.T) {
			m := dynmis.MustNew(dynmis.WithSeed(5), dynmis.WithEngine(e))
			if _, err := m.Drive(context.Background(), slices.Values(cs)); err != nil {
				t.Fatal(err)
			}
			mem, ok := m.MemoryProfile()
			if !ok {
				t.Fatalf("%v: MemoryProfile not supported", e)
			}
			n := int64(len(m.Nodes()))
			if mem.Nodes != n {
				t.Fatalf("Memory.Nodes = %d, facade sees %d", mem.Nodes, n)
			}
			if mem.Slots < mem.Nodes {
				t.Fatalf("Slots %d < Nodes %d", mem.Slots, mem.Nodes)
			}
			if mem.ArenaBytes <= 0 || mem.IndexBytes <= 0 || mem.TotalBytes <= 0 {
				t.Fatalf("non-positive byte account: %+v", mem)
			}
			if mem.AuxBytes < 0 {
				t.Fatalf("negative aux bytes: %+v", mem)
			}
			want := mem.ArenaBytes + mem.IndexBytes + mem.FreeBytes + mem.SpillSlabBytes + mem.AuxBytes
			if mem.TotalBytes != want {
				t.Fatalf("TotalBytes %d != component sum %d", mem.TotalBytes, want)
			}
			if n > 0 && mem.BytesPerNode <= 0 {
				t.Fatalf("BytesPerNode = %v with %d nodes", mem.BytesPerNode, n)
			}
			if u := mem.SpillUtilization; u < 0 || u > 1 {
				t.Fatalf("SpillUtilization = %v", u)
			}
		})
	}

	for _, e := range []dynmis.Engine{dynmis.EngineDirect, dynmis.EngineProtocol, dynmis.EngineAsyncDirect} {
		m := dynmis.MustNew(dynmis.WithSeed(5), dynmis.WithEngine(e))
		if _, ok := m.MemoryProfile(); ok {
			t.Fatalf("%v: message-passing engine claims a memory profile", e)
		}
	}
}

// TestMemoryProfileStableUnderChurn pins the headline property the
// storage rewrite buys: steady-state delete/re-insert churn of a hub
// must not grow the retained account (the spill pool recycles blocks;
// nothing is pinned per slot).
func TestMemoryProfileStableUnderChurn(t *testing.T) {
	m := dynmis.MustNew(dynmis.WithSeed(9), dynmis.WithEngine(dynmis.EngineTemplate))
	const hub, leaves = dynmis.NodeID(0), 64
	nbrs := make([]dynmis.NodeID, 0, leaves)
	if _, err := m.InsertNode(hub); err != nil {
		t.Fatal(err)
	}
	for v := dynmis.NodeID(1); v <= leaves; v++ {
		if _, err := m.InsertNode(v); err != nil {
			t.Fatal(err)
		}
		if _, err := m.InsertEdge(hub, v); err != nil {
			t.Fatal(err)
		}
		nbrs = append(nbrs, v)
	}

	cycle := func() {
		if _, err := m.RemoveNode(hub); err != nil {
			t.Fatal(err)
		}
		if _, err := m.InsertNode(hub, nbrs...); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // settle free-list capacities
	base, ok := m.MemoryProfile()
	if !ok {
		t.Fatal("template lost the memory capability")
	}
	// Compare the storage account (arena + index + free-lists + spill
	// pool), not AuxBytes: the engine's cascade scratch legitimately
	// warms up to the largest recovery seen, which is stochastic in when
	// the hub first wins the priority lottery.
	baseStorage := base.TotalBytes - base.AuxBytes
	for i := 0; i < 25; i++ {
		cycle()
		mem, _ := m.MemoryProfile()
		if got := mem.TotalBytes - mem.AuxBytes; got > baseStorage {
			t.Fatalf("cycle %d: retained storage bytes grew %d -> %d", i, baseStorage, got)
		}
	}
}
