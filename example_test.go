package dynmis_test

import (
	"context"
	"fmt"

	"dynmis"
)

// The basic lifecycle: build a small graph, watch the MIS adapt, and
// verify history independence.
func Example() {
	m := dynmis.MustNew(dynmis.WithSeed(42))

	m.InsertNode(1)
	m.InsertNode(2, 1)
	m.InsertNode(3, 1, 2)
	fmt.Println("triangle MIS size:", len(m.MIS()))

	m.RemoveEdge(1, 2)
	m.RemoveEdge(1, 3)
	fmt.Println("after isolating 1:", len(m.MIS()))

	if err := m.Verify(); err != nil {
		fmt.Println("verify failed:", err)
	}
	// Output:
	// triangle MIS size: 1
	// after isolating 1: 2
}

// Reports carry the paper's complexity measures for every change.
func ExampleMaintainer_InsertNode() {
	m := dynmis.MustNew(dynmis.WithSeed(7), dynmis.WithEngine(dynmis.EngineTemplate))
	m.InsertNode(1)
	rep, _ := m.InsertNode(2, 1)
	// With this seed node 2 draws the earlier priority: it joins the MIS
	// and evicts node 1 — two adjustments. Theorem 1 bounds the
	// expectation over seeds by 1, not the worst case.
	fmt.Println("MIS size:", len(m.MIS()), "adjustments:", rep.Adjustments, "|S|:", rep.SSize)
	// Output:
	// MIS size: 1 adjustments: 2 |S|: 2
}

// Engines are interchangeable: same seed, same structure.
func ExampleMaintainer_Engine() {
	build := func(e dynmis.Engine) []dynmis.NodeID {
		m := dynmis.MustNew(dynmis.WithSeed(99), dynmis.WithEngine(e))
		m.InsertNode(10)
		m.InsertNode(20, 10)
		m.InsertNode(30, 10, 20)
		m.InsertNode(40, 30)
		return m.MIS()
	}
	a := build(dynmis.EngineTemplate)
	b := build(dynmis.EngineProtocol)
	fmt.Println(len(a) == len(b))
	// Output:
	// true
}

// Correlation clustering is derived from the MIS pivots for free.
func ExampleMaintainer_Clusters() {
	m := dynmis.MustNew(dynmis.WithSeed(1))
	m.InsertNode(1)
	m.InsertNode(2, 1)
	clusters := m.Clusters()
	// Two adjacent nodes always share a cluster: one of them is the
	// pivot of the other.
	fmt.Println(clusters[1] == clusters[2])
	// Output:
	// true
}

// A muted node keeps listening, so it rejoins with O(1) broadcasts.
func ExampleMaintainer_Mute() {
	m := dynmis.MustNew(dynmis.WithSeed(3))
	m.InsertNode(1)
	m.InsertNode(2, 1)
	m.InsertNode(3, 1, 2)

	m.Mute(2)
	fmt.Println("visible while muted:", m.HasNode(2))
	m.Unmute(2, 1, 3)
	fmt.Println("visible after unmute:", m.HasNode(2))
	// Output:
	// visible while muted: false
	// visible after unmute: true
}

// The sharded engine applies whole windows of updates with a parallel
// recovery cascade across P vertex shards. The maintained structure is
// identical to every other engine's for the same seed — only the
// throughput and the cross-shard hand-off account differ.
func ExampleMaintainer_sharded() {
	m := dynmis.MustNew(
		dynmis.WithSeed(42),
		dynmis.WithEngine(dynmis.EngineSharded),
		dynmis.WithShards(4),
	)

	// One window: build a 3-edge path and delete its head, in a single
	// staged batch with one combined recovery.
	rep, err := m.ApplyBatch([]dynmis.Change{
		dynmis.NodeChange(dynmis.NodeInsert, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 2, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 3, 2),
		dynmis.NodeChange(dynmis.NodeInsert, 4, 3),
		dynmis.NodeChange(dynmis.NodeDeleteAbrupt, 1),
	})
	if err != nil {
		fmt.Println("apply failed:", err)
	}

	// The same seed on the model-level template engine yields the same
	// structure: sharding is invisible in the output.
	ref := dynmis.MustNew(dynmis.WithSeed(42), dynmis.WithEngine(dynmis.EngineTemplate))
	ref.ApplyBatch([]dynmis.Change{
		dynmis.NodeChange(dynmis.NodeInsert, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 2, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 3, 2),
		dynmis.NodeChange(dynmis.NodeInsert, 4, 3),
		dynmis.NodeChange(dynmis.NodeDeleteAbrupt, 1),
	})

	fmt.Println("MIS size:", len(m.MIS()))
	fmt.Println("matches template engine:", fmt.Sprint(m.MIS()) == fmt.Sprint(ref.MIS()))
	fmt.Println("verified:", m.Verify() == nil, "adjustments:", rep.Adjustments)
	// Output:
	// MIS size: 2
	// matches template engine: true
	// verified: true adjustments: 2
}

// Consumers should not re-poll MIS after every update: the change feed
// pushes exactly which nodes flipped. Events carry the net membership
// delta per update — in expectation a single record per topology change
// (Theorem 1) — and the stream is identical on every engine for equal
// seeds.
func ExampleMaintainer_subscribe() {
	m := dynmis.MustNew(dynmis.WithSeed(42), dynmis.WithEngine(dynmis.EngineTemplate))

	var events []dynmis.Event
	m.Subscribe(func(ev dynmis.Event) { events = append(events, ev) })

	m.InsertNode(1)
	m.InsertNode(2, 1)
	m.InsertNode(3, 1, 2)
	m.RemoveNodeAbrupt(1)

	for _, ev := range events {
		fmt.Printf("seq=%d node=%d cause=%s inMIS=%v\n", ev.Seq, ev.Node, ev.Cause, ev.To == dynmis.In)
	}
	// Replaying the feed reproduces the maintainer's state exactly.
	fmt.Println("replay matches:", len(dynmis.ReplayEvents(events)) == m.NodeCount())
	// Output:
	// seq=1 node=1 cause=join inMIS=true
	// seq=2 node=2 cause=join inMIS=false
	// seq=3 node=3 cause=join inMIS=false
	// seq=4 node=1 cause=leave inMIS=false
	// seq=5 node=3 cause=flip inMIS=true
	// replay matches: true
}

// Streaming ingestion: a Source is any iterator of changes — a workload
// generator, a recorded trace replayed with dynmis/trace, a slice via
// slices.Values, or a hand-written func. Drive ingests the stream
// (context-cancellable, optionally windowed through DriveWindow) and
// returns a Summary aggregating the per-change cost reports.
func ExampleMaintainer_drive() {
	m := dynmis.MustNew(dynmis.WithSeed(42), dynmis.WithEngine(dynmis.EngineTemplate))

	src := dynmis.SourceOf(
		dynmis.NodeChange(dynmis.NodeInsert, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 2, 1),
		dynmis.NodeChange(dynmis.NodeInsert, 3, 1, 2),
		dynmis.EdgeChange(dynmis.EdgeDeleteGraceful, 1, 2),
		dynmis.NodeChange(dynmis.NodeDeleteAbrupt, 1),
	)
	sum, err := m.Drive(context.Background(), src)
	if err != nil {
		fmt.Println("drive failed:", err)
	}

	fmt.Println("changes:", sum.Changes, "in", sum.Applies, "applications")
	fmt.Println("inserts:", sum.ByKind[dynmis.NodeInsert], "deletes:", sum.ByKind[dynmis.NodeDeleteAbrupt])
	fmt.Printf("adjustments: total=%d mean=%.1f\n", sum.Total.Adjustments, sum.MeanAdjustments())
	fmt.Println("MIS size:", len(m.MIS()))
	// Output:
	// changes: 5 in 5 applications
	// inserts: 3 deletes: 1
	// adjustments: total=5 mean=1.0
	// MIS size: 1
}

// The sequential variant maintains the same structure without any
// message passing, at O(Δ) expected work per update.
func ExampleNewSequential() {
	s := dynmis.NewSequential(5)
	s.Apply(dynmis.NodeChange(dynmis.NodeInsert, 1))
	s.Apply(dynmis.NodeChange(dynmis.NodeInsert, 2, 1))
	rep, _ := s.Apply(dynmis.EdgeChange(dynmis.EdgeDeleteGraceful, 1, 2))
	fmt.Println("MIS size:", len(s.MIS()), "work bounded:", rep.Work < 10)
	// Output:
	// MIS size: 2 work bounded: true
}
