#!/bin/sh
# serve_smoke: the end-to-end daemon gate `make serve-smoke` runs.
#
# 1. Boot dynmisd on an ephemeral port with a WAL.
# 2. Drive a workload burst over the wire with dynmisload, holding
#    concurrent subscribers open and gap-checking their streams, and
#    verifying /v1/state against a local replay (-verify).
# 3. kill -9 the daemon — no flush, no shutdown path.
# 4. Restart it on the same WAL and verify the recovered State still
#    matches the reference replay of the same changes (-verify again,
#    with -steps matching so the local replay reproduces the full run).
#
# Sized for CI (a few seconds); the full acceptance-scale run is
# SERVE_SMOKE_STEPS=50000 SERVE_SMOKE_SUBS=64 scripts/serve_smoke.sh.
set -eu

GO=${GO:-go}
STEPS=${SERVE_SMOKE_STEPS:-5000}
SUBS=${SERVE_SMOKE_SUBS:-8}
NODES=${SERVE_SMOKE_NODES:-200}
SEED=${SERVE_SMOKE_SEED:-1}

workdir=$(mktemp -d /tmp/dynmis_serve_smoke.XXXXXX)
pid=""
cleanup() {
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building"
$GO build -o "$workdir/dynmisd" ./cmd/dynmisd
$GO build -o "$workdir/dynmisload" ./cmd/dynmisload

boot() {
    rm -f "$workdir/addr"
    "$workdir/dynmisd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
        -wal "$workdir/wal.jsonl" -snap-every 1000 -fsync interval -seed "$SEED" &
    pid=$!
    for _ in $(seq 1 100); do
        [ -s "$workdir/addr" ] && break
        sleep 0.05
    done
    [ -s "$workdir/addr" ] || { echo "serve-smoke: daemon did not come up" >&2; exit 1; }
    addr="http://$(cat "$workdir/addr")"
}

echo "serve-smoke: booting dynmisd"
boot

echo "serve-smoke: driving $STEPS updates with $SUBS subscribers"
"$workdir/dynmisload" -addr "$addr" -scenario churn -nodes "$NODES" \
    -steps "$STEPS" -seed "$SEED" -subscribers "$SUBS" -verify

echo "serve-smoke: kill -9"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "serve-smoke: restarting on the same WAL"
boot

# The restarted daemon must hold the exact state of the uninterrupted
# run: dynmisload -steps 0 skips driving and only runs the subscriber
# and verify legs; -verify replays the daemon's own WAL locally under
# the daemon's seed and compares /v1/state node for node.
"$workdir/dynmisload" -addr "$addr" -steps 0 -subscribers 0 \
    -verify -verify-wal "$workdir/wal.jsonl" -seed "$SEED"

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "serve-smoke: OK"
