package main

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dynmis"
	"dynmis/workload"
)

// The big-graph tier: the memory-lean arena's reason to exist. Regular
// scenarios materialize their change slices (fine at n=2000); at
// n=10^6 the slice would dwarf the engine under measurement, so this
// tier drives the streaming big scenarios (workload.BigScenarios) —
// lazy build and drive streams from one generator — through the
// arena-backed engines and reports the two memory figures the ROADMAP
// tracks: deterministic bytes/node from the engine's own account
// (committable, no machine noise) and the coarse process peak RSS.

// bigRun is one (scenario, n, engine) measurement.
type bigRun struct {
	Engine        string  `json:"engine"`
	Shards        int     `json:"shards,omitempty"`
	Window        int     `json:"window,omitempty"`
	Gomaxprocs    int     `json:"gomaxprocs"`
	Nodes         int64   `json:"nodes"` // live nodes after the drive
	Edges         int64   `json:"edges"`
	BuildSeconds  float64 `json:"build_seconds"`
	DriveSeconds  float64 `json:"drive_seconds"`
	UpdatesPerSec float64 `json:"updates_per_sec"`

	// The memory columns. BytesPerNode and TotalBytes come from the
	// engine's deterministic account (core.MemoryReporter);
	// SpillUtilization is live spill bytes over slab bytes. PeakRSSKB is
	// the process high-watermark (getrusage) sampled right after the
	// run — a watermark never decreases, so within a file runs are
	// ordered small n first and a row's value is only attributable to it
	// when it exceeds every earlier row's. HeapDeltaBytes (with -mem) is
	// the post-GC live-heap growth across the run.
	BytesPerNode     float64 `json:"bytes_per_node"`
	TotalBytes       int64   `json:"total_bytes"`
	SpillUtilization float64 `json:"spill_utilization"`
	PeakRSSKB        int64   `json:"peak_rss_kb"`
	HeapDeltaBytes   int64   `json:"heap_delta_bytes,omitempty"`

	Verified bool `json:"verified"`
}

// bigScenarioResult groups the runs of one (scenario, n) cell.
type bigScenarioResult struct {
	Scenario    string   `json:"scenario"`
	Description string   `json:"description"`
	N           int      `json:"n"`
	Steps       int      `json:"steps"`
	Runs        []bigRun `json:"runs"`
}

// bigEngineNames are the selectable -big-engines values: the
// arena-backed engines (all implement the memory capability). The
// message-passing engines replicate O(n) state per simulated node and
// have no business at this tier.
var bigEngineNames = []string{"sequential", "sharded", "sequential-struct", "gupta-khan", "aoss"}

// defaultBigEngines is the head-to-head set the committed artifact
// carries.
const defaultBigEngines = "sequential,sharded,gupta-khan,aoss"

// runBig executes the big tier: every selected scenario at every n,
// sizes ascending (so the peak-RSS watermark stays attributable),
// every selected engine per cell.
func runBig(seed uint64, sizes []int, steps int, enginesCSV string, window int, memFlag bool) ([]bigScenarioResult, error) {
	names, err := parseBigEngines(enginesCSV)
	if err != nil {
		return nil, err
	}
	var results []bigScenarioResult
	for _, n := range sizes {
		for _, sc := range workload.BigScenarios() {
			res := bigScenarioResult{Scenario: sc.Name, Description: sc.Description, N: n, Steps: steps}
			fmt.Printf("== big: %s (n=%d, %d updates)\n", sc.Name, n, steps)
			for _, name := range names {
				br, err := runBigEngine(sc, seed, n, steps, name, window, memFlag)
				if err != nil {
					return nil, err
				}
				fmt.Printf("   %-18s %12.0f updates/s  %7.1f B/node  util=%.2f  rss=%dMB  n=%d m=%d  verified=%v\n",
					bigLabel(br), br.UpdatesPerSec, br.BytesPerNode, br.SpillUtilization,
					br.PeakRSSKB/1024, br.Nodes, br.Edges, br.Verified)
				if !br.Verified {
					return nil, fmt.Errorf("big %s/%s failed MIS verification", sc.Name, name)
				}
				res.Runs = append(res.Runs, br)
			}
			results = append(results, res)
		}
	}
	return results, nil
}

// runBigEngine drives one cell: untimed streamed warm-up (after Grow
// pre-sizes the arena), timed streamed churn, then the memory account
// and the oracle verification.
func runBigEngine(sc workload.BigScenario, seed uint64, n, steps int, name string, window int, memFlag bool) (bigRun, error) {
	opts := []dynmis.Option{dynmis.WithSeed(seed)}
	br := bigRun{Engine: name, Gomaxprocs: runtime.GOMAXPROCS(0)}
	var driveOpts []dynmis.DriveOption
	switch name {
	case "sequential":
		opts = append(opts, dynmis.WithEngine(dynmis.EngineTemplate))
	case "sequential-struct":
		opts = append(opts, dynmis.WithEngine(dynmis.EngineSequential))
	case "gupta-khan":
		opts = append(opts, dynmis.WithEngine(dynmis.EngineGuptaKhan))
	case "aoss":
		opts = append(opts, dynmis.WithEngine(dynmis.EngineAOSS))
	case "sharded":
		shards := min(4, runtime.GOMAXPROCS(0))
		opts = append(opts, dynmis.WithEngine(dynmis.EngineSharded), dynmis.WithShards(shards))
		driveOpts = append(driveOpts, dynmis.DriveWindow(window))
		br.Shards, br.Window = shards, window
	default:
		return bigRun{}, fmt.Errorf("big tier: unknown engine %q", name)
	}

	var before runtime.MemStats
	if memFlag {
		runtime.GC()
		runtime.ReadMemStats(&before)
	}

	m, err := dynmis.New(opts...)
	if err != nil {
		return bigRun{}, err
	}
	build, drive := sc.Streams(workload.Rand(seed), n, steps)
	ctx := context.Background()

	m.Grow(n)
	start := time.Now()
	if _, err := m.Drive(ctx, build, driveOpts...); err != nil {
		return bigRun{}, fmt.Errorf("big %s/%s build: %w", sc.Name, name, err)
	}
	br.BuildSeconds = time.Since(start).Seconds()

	start = time.Now()
	sum, err := m.Drive(ctx, drive, driveOpts...)
	br.DriveSeconds = time.Since(start).Seconds()
	if err != nil {
		return bigRun{}, fmt.Errorf("big %s/%s drive: %w", sc.Name, name, err)
	}
	br.UpdatesPerSec = float64(sum.Changes) / br.DriveSeconds

	mem, ok := m.MemoryProfile()
	if !ok {
		return bigRun{}, fmt.Errorf("big %s/%s: engine lacks the memory capability", sc.Name, name)
	}
	br.Nodes, br.Edges = mem.Nodes, mem.Edges
	br.BytesPerNode, br.TotalBytes, br.SpillUtilization = mem.BytesPerNode, mem.TotalBytes, mem.SpillUtilization

	if memFlag {
		var after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&after)
		br.HeapDeltaBytes = int64(after.HeapAlloc) - int64(before.HeapAlloc)
	}
	br.PeakRSSKB = peakRSSKB()
	br.Verified = m.Verify() == nil
	return br, nil
}

// peakRSSKB returns the process's peak resident set in KB (getrusage
// reports KB on Linux, bytes on Darwin).
func peakRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	rss := int64(ru.Maxrss)
	if runtime.GOOS == "darwin" {
		rss /= 1024
	}
	return rss
}

func parseBigEngines(csv string) ([]string, error) {
	var names []string
	for _, s := range strings.Split(csv, ",") {
		name := strings.TrimSpace(s)
		if name == "" {
			continue
		}
		found := false
		for _, v := range bigEngineNames {
			if v == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("-big-engines: unknown engine %q (valid: %s)",
				name, strings.Join(bigEngineNames, ", "))
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-big-engines: empty selection")
	}
	return names, nil
}

func bigLabel(br bigRun) string {
	if br.Shards > 0 {
		return fmt.Sprintf("%s-%d", br.Engine, br.Shards)
	}
	return br.Engine
}
