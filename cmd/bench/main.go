// Command bench is the unified benchmark harness: it drives every
// workload scenario (churn, sliding-window, power-law, single-node
// churn, adversarial deletions) through the streaming ingestion API
// (Maintainer.Drive)
// against the sequential and sharded update engines, verifies each final
// structure against the greedy oracle, and emits machine-readable
// results to BENCH_dynmis.json so the performance trajectory is
// comparable across commits.
//
// Usage:
//
//	bench [-n 2000] [-steps 20000] [-shards 1,4,8] [-window 512]
//	      [-gomaxprocs 1,2,4,8,16] [-scenarios churn,sliding-window]
//	      [-engines sequential,sharded,gupta-khan] [-seed 42] [-quick]
//	      [-min-speedup 1.0] [-record trace.jsonl] [-replay trace.jsonl]
//	      [-out BENCH_dynmis.json]
//
// Engines (select a subset with -engines; default all):
//
//   - sequential:      EngineTemplate driven change by change — the
//     paper's per-update path. Always timed at GOMAXPROCS=1: it is the
//     single-core baseline every scaling ratio divides by.
//   - sequential-batch: EngineTemplate driven through DriveWindow —
//     batched staging, still a single-threaded cascade (GOMAXPROCS=1).
//   - sharded-P:       EngineSharded with P worker shards, windowed,
//     timed once per -gomaxprocs value. Each run records the GOMAXPROCS
//     it was timed at and its scaling efficiency:
//     (rate / sequential rate) / min(P, GOMAXPROCS) — the fraction of
//     ideal linear scaling the run achieved.
//   - sequential-struct: EngineSequential, the §6 single-machine data
//     structure, driven change by change at GOMAXPROCS=1.
//   - gupta-khan, aoss: the competitor dynamic-MIS engines, driven
//     change by change at GOMAXPROCS=1 — the head-to-head rows against
//     the paper's per-update path.
//
// -record captures the full ingested stream (warm-up + drive) of the
// selected scenario as a dynmis/trace JSONL file; -replay benchmarks a
// previously recorded trace instead of generating a workload, timing the
// whole trace from the empty graph — the same bytes drive every engine,
// bit for bit.
//
// -min-speedup gates CI smoke runs: after benchmarking, exit nonzero
// unless the headline sharded rate reaches the given multiple of the
// sequential rate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"time"

	"dynmis"
	"dynmis/trace"
	"dynmis/workload"
)

// Schema identifies the output format. v2 moved gomaxprocs from the top
// level into every engine run (a file may now mix runs at different
// GOMAXPROCS) and added per-run scaling_efficiency. v3 added the "serve"
// section: the dynmisd daemon benchmarked over real loopback HTTP
// (ingest throughput and subscriber-visible event latency).
const Schema = "dynmis-bench/v3"

// engineRun is one (scenario, engine, gomaxprocs) measurement in the
// emitted JSON.
type engineRun struct {
	Engine        string  `json:"engine"`
	Shards        int     `json:"shards,omitempty"`
	Window        int     `json:"window,omitempty"`
	Gomaxprocs    int     `json:"gomaxprocs"`
	Updates       int     `json:"updates"`
	Seconds       float64 `json:"seconds"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// ScalingEfficiency is (rate / sequential rate) / min(shards,
	// gomaxprocs) for sharded runs: 1.0 is ideal linear scaling over the
	// exploitable parallelism, values near 1/min(P,procs) mean the run
	// scaled not at all. Zero for the sequential engines.
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	Adjustments       int     `json:"adjustments"`
	SSize             int     `json:"s_size"`
	CrossShard        int     `json:"cross_shard,omitempty"`
	Steals            int     `json:"steals,omitempty"`
	Verified          bool    `json:"verified"`
}

type scenarioResult struct {
	Scenario    string      `json:"scenario"`
	Description string      `json:"description"`
	Nodes       int         `json:"initial_nodes"`
	Engines     []engineRun `json:"engines"`
}

type benchOutput struct {
	Schema    string           `json:"schema"`
	Go        string           `json:"go"`
	NumCPU    int              `json:"num_cpu"`
	Seed      uint64           `json:"seed"`
	Steps     int              `json:"steps"`
	Scenarios []scenarioResult `json:"scenarios"`
	Headline  headline         `json:"headline"`
	Serve     *serveResult     `json:"serve,omitempty"`
}

// headline is the number the ROADMAP tracks: sharded updates/sec on the
// churn scenario, against both baselines. speedup (vs the per-update
// sequential path) mixes the windowed-staging gain with the parallel
// cascade; speedup_vs_batch (vs the single-threaded batched template)
// isolates what sharding itself buys, so both are recorded, along with
// the GOMAXPROCS and scaling efficiency of the winning sharded run.
type headline struct {
	Scenario          string  `json:"scenario"`
	SequentialPerSec  float64 `json:"sequential_updates_per_sec"`
	BatchPerSec       float64 `json:"sequential_batch_updates_per_sec"`
	ShardedPerSec     float64 `json:"sharded_updates_per_sec"`
	ShardedShards     int     `json:"sharded_shards"`
	ShardedGomaxprocs int     `json:"sharded_gomaxprocs"`
	Speedup           float64 `json:"speedup"`
	SpeedupVsBatch    float64 `json:"speedup_vs_batch"`
	ScalingEfficiency float64 `json:"scaling_efficiency"`
}

// job is one benchmarkable workload: an untimed warm-up and a timed
// drive stream, replayable across engines.
type job struct {
	name        string
	description string
	nodes       int
	build       []dynmis.Change
	drive       []dynmis.Change
}

func main() {
	var (
		n          = flag.Int("n", 2000, "initial node count (scenarios may cap it)")
		steps      = flag.Int("steps", 20000, "timed update steps per engine")
		shardsCSV  = flag.String("shards", defaultShards(), "comma-separated shard counts to benchmark")
		window     = flag.Int("window", 512, "batch window for the batched/sharded engines")
		gmpCSV     = flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS values for the sharded runs (default: the current value)")
		scenCSV    = flag.String("scenarios", "", "comma-separated scenario names (default: all)")
		enginesCSV = flag.String("engines", "", "comma-separated subset of benchmark engines (default: all; valid: "+strings.Join(benchEngineNames, ", ")+")")
		seed       = flag.Uint64("seed", 42, "random seed (engines and workload generation)")
		quick      = flag.Bool("quick", false, "smoke-test sizes (n=300, steps=3000)")
		record     = flag.String("record", "", "record the ingested stream (warm-up + drive) to this trace file; requires exactly one scenario")
		replay     = flag.String("replay", "", "benchmark a recorded trace instead of generating workloads")
		out        = flag.String("out", "BENCH_dynmis.json", "output JSON path")
		serveSteps = flag.Int("serve-steps", 50000, "updates driven over the wire in the serve benchmark (0 disables it)")
		serveSubs  = flag.Int("serve-subs", 64, "concurrent event subscribers in the serve benchmark")
		baseline   = flag.String("baseline", "", "compare per-scenario updates/sec against this previously emitted JSON (e.g. the committed BENCH_dynmis.json)")
		minSpeedup = flag.Float64("min-speedup", 0, "exit nonzero unless the headline sharded speedup vs sequential reaches this factor")
	)
	flag.Parse()
	if *quick {
		*n, *steps = 300, 3000
		*serveSteps, *serveSubs = 5000, 8
	}
	if *record != "" && *replay != "" {
		fatal(fmt.Errorf("-record and -replay are mutually exclusive"))
	}

	sel, err := parseEngines(*enginesCSV)
	if err != nil {
		fatal(err)
	}
	jobs, err := buildJobs(*scenCSV, *replay, *seed, *n, *steps)
	if err != nil {
		fatal(err)
	}
	if *record != "" {
		if len(jobs) != 1 {
			fatal(fmt.Errorf("-record needs exactly one scenario (have %d); pass -scenarios", len(jobs)))
		}
		if err := recordJob(*record, jobs[0]); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d changes to %s\n", len(jobs[0].build)+len(jobs[0].drive), *record)
	}
	shardCounts, err := parseCounts(*shardsCSV, "-shards")
	if err != nil {
		fatal(err)
	}
	gmpList := []int{runtime.GOMAXPROCS(0)}
	if *gmpCSV != "" {
		if gmpList, err = parseCounts(*gmpCSV, "-gomaxprocs"); err != nil {
			fatal(err)
		}
	}

	output := benchOutput{
		Schema: Schema,
		Go:     runtime.Version(),
		NumCPU: runtime.NumCPU(),
		Seed:   *seed,
		Steps:  *steps,
	}

	for _, jb := range jobs {
		res := scenarioResult{Scenario: jb.name, Description: jb.description, Nodes: jb.nodes}
		fmt.Printf("== %s (n=%d, %d updates)\n", jb.name, jb.nodes, len(jb.drive))

		// The sequential engines are the single-core baselines: they are
		// always timed at GOMAXPROCS=1, whatever the sharded matrix is.
		var seq engineRun
		if sel["sequential"] {
			seq = run(jb, *seed, "sequential", 0, 0, 1, dynmis.WithEngine(dynmis.EngineTemplate))
			res.Engines = append(res.Engines, seq)
		}
		if sel["sequential-batch"] {
			res.Engines = append(res.Engines,
				run(jb, *seed, "sequential-batch", 0, *window, 1, dynmis.WithEngine(dynmis.EngineTemplate)))
		}
		if sel["sharded"] {
			for _, gmp := range gmpList {
				for _, p := range shardCounts {
					er := run(jb, *seed, "sharded", p, *window, gmp,
						dynmis.WithEngine(dynmis.EngineSharded), dynmis.WithShards(p))
					if seq.UpdatesPerSec > 0 {
						er.ScalingEfficiency = er.UpdatesPerSec / seq.UpdatesPerSec / float64(min(p, gmp))
					}
					res.Engines = append(res.Engines, er)
				}
			}
		}
		// The single-machine per-update engines: the §6 sequential
		// structure and the competitor algorithms, head to head.
		for _, sm := range []struct {
			name   string
			engine dynmis.Engine
		}{
			{"sequential-struct", dynmis.EngineSequential},
			{"gupta-khan", dynmis.EngineGuptaKhan},
			{"aoss", dynmis.EngineAOSS},
		} {
			if sel[sm.name] {
				res.Engines = append(res.Engines,
					run(jb, *seed, sm.name, 0, 0, 1, dynmis.WithEngine(sm.engine)))
			}
		}
		for _, er := range res.Engines {
			fmt.Printf("   %-18s p=%-3d %12.0f updates/s  eff=%-5.2f adj=%-6d |S|=%-6d xshard=%-6d steals=%-5d verified=%v\n",
				label(er), er.Gomaxprocs, er.UpdatesPerSec, er.ScalingEfficiency,
				er.Adjustments, er.SSize, er.CrossShard, er.Steals, er.Verified)
			if !er.Verified {
				fatal(fmt.Errorf("FATAL: %s/%s failed MIS verification", jb.name, label(er)))
			}
		}
		output.Scenarios = append(output.Scenarios, res)

		if jb.name == "churn" {
			output.Headline = churnHeadline(res)
		}
	}

	if output.Headline.Scenario != "" && output.Headline.ShardedPerSec > 0 {
		h := output.Headline
		fmt.Printf("\nheadline: churn %0.f updates/s sequential -> %0.f updates/s sharded-%d@p%d (%.2fx; %.2fx vs single-threaded batch; efficiency %.2f)\n",
			h.SequentialPerSec, h.ShardedPerSec, h.ShardedShards, h.ShardedGomaxprocs,
			h.Speedup, h.SpeedupVsBatch, h.ScalingEfficiency)
	}

	// The serve section: dynmisd over real loopback HTTP. Skipped in
	// -replay mode (the section always benches the churn scenario at its
	// own size) and when -serve-steps is 0.
	if *serveSteps > 0 && *replay == "" {
		fmt.Printf("\n== serve (churn over HTTP, %d updates, %d subscribers)\n", *serveSteps, *serveSubs)
		sres, err := runServe(*seed, *n, *serveSteps, *serveSubs)
		if err != nil {
			fatal(err)
		}
		output.Serve = sres
		fmt.Printf("   ingest %12.0f updates/s   %d events x %d subscribers   latency p50 %.2fms p99 %.2fms\n",
			sres.IngestPerSec, sres.Events, sres.Subscribers, sres.LatencyP50Ms, sres.LatencyP99Ms)
	}

	// Load the baseline before writing: -baseline and -out may name the
	// same file (regenerating the committed numbers while reporting the
	// change against them).
	var baseData []byte
	if *baseline != "" {
		baseData, err = os.ReadFile(*baseline)
		if err != nil {
			fatal(fmt.Errorf("baseline: %w", err))
		}
	}

	data, err := json.MarshalIndent(output, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if baseData != nil {
		if err := printDelta(os.Stdout, output, *baseline, baseData); err != nil {
			fatal(err)
		}
	}

	if *minSpeedup > 0 {
		h := output.Headline
		if h.Scenario == "" {
			fatal(fmt.Errorf("-min-speedup needs the churn scenario in the run set"))
		}
		if h.Speedup < *minSpeedup {
			fatal(fmt.Errorf("headline speedup %.2fx below the -min-speedup gate %.2fx (sharded %.0f vs sequential %.0f updates/s)",
				h.Speedup, *minSpeedup, h.ShardedPerSec, h.SequentialPerSec))
		}
		fmt.Printf("min-speedup gate passed: %.2fx >= %.2fx\n", h.Speedup, *minSpeedup)
	}
}

// baselineFile parses both schema versions: v1 carried one top-level
// gomaxprocs for every run, v2 records it per run.
type baselineFile struct {
	Schema     string           `json:"schema"`
	GOMAXPROCS int              `json:"gomaxprocs"` // v1 only
	Steps      int              `json:"steps"`
	Scenarios  []scenarioResult `json:"scenarios"`
}

// printDelta renders this run's per-scenario updates/sec against a
// previously emitted JSON file (either schema version). It is a report,
// not a gate: engines whose scenario or configuration is absent from the
// baseline print "new", and differing -steps merely change measurement
// noise. Comparing rates measured at different GOMAXPROCS would be
// meaningless, though, so those entries are refused with a note instead
// of a ratio.
func printDelta(w io.Writer, cur benchOutput, path string, data []byte) error {
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	switch base.Schema {
	case Schema, "dynmis-bench/v1", "dynmis-bench/v2":
	default:
		return fmt.Errorf("baseline %s: unsupported schema %q", path, base.Schema)
	}
	// A baseline may carry a whole GOMAXPROCS matrix per engine (the
	// committed file does), so match on (scenario, engine, procs) first;
	// the name-only map is kept solely to distinguish "measured at a
	// different GOMAXPROCS" from "not in the baseline at all".
	rate := make(map[string]float64)
	procsOf := make(map[string][]int)
	for _, sc := range base.Scenarios {
		for _, er := range sc.Engines {
			procs := er.Gomaxprocs
			if procs == 0 {
				procs = base.GOMAXPROCS // v1: one global value
			}
			key := sc.Scenario + "/" + label(er)
			rate[fmt.Sprintf("%s@%d", key, procs)] = er.UpdatesPerSec
			procsOf[key] = append(procsOf[key], procs)
		}
	}
	fmt.Fprintf(w, "\ndelta vs %s (steps %d -> %d):\n", path, base.Steps, cur.Steps)
	for _, sc := range cur.Scenarios {
		for _, er := range sc.Engines {
			key := sc.Scenario + "/" + label(er)
			old, ok := rate[fmt.Sprintf("%s@%d", key, er.Gomaxprocs)]
			switch {
			case ok && old > 0:
				fmt.Fprintf(w, "  %-32s %12.0f updates/s  %8.2fx (baseline %.0f)\n",
					key, er.UpdatesPerSec, er.UpdatesPerSec/old, old)
			case len(procsOf[key]) > 0:
				fmt.Fprintf(w, "  %-32s %12.0f updates/s   (not comparable: baseline at GOMAXPROCS=%v, this run at %d)\n",
					key, er.UpdatesPerSec, procsOf[key], er.Gomaxprocs)
			default:
				fmt.Fprintf(w, "  %-32s %12.0f updates/s   (new)\n", key, er.UpdatesPerSec)
			}
		}
	}
	return nil
}

// buildJobs resolves the workload set: recorded-trace replay, or the
// selected scenarios instantiated at the canonical workload rng.
func buildJobs(scenCSV, replay string, seed uint64, n, steps int) ([]job, error) {
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		cs, err := trace.ReadAll(f)
		if err != nil {
			return nil, fmt.Errorf("replay %s: %w", replay, err)
		}
		return []job{{
			name:        "replay",
			description: fmt.Sprintf("recorded trace %s, timed from the empty graph", replay),
			drive:       cs,
		}}, nil
	}

	scenarios := workload.Scenarios()
	if scenCSV != "" {
		scenarios = scenarios[:0]
		for _, name := range strings.Split(scenCSV, ",") {
			sc, ok := workload.ScenarioByName(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown scenario %q", name)
			}
			scenarios = append(scenarios, sc)
		}
	}
	jobs := make([]job, 0, len(scenarios))
	for _, sc := range scenarios {
		inst := sc.Instantiate(seed, n, steps)
		jobs = append(jobs, job{
			name:        sc.Name,
			description: sc.Description,
			nodes:       inst.Nodes,
			build:       inst.Build,
			drive:       inst.Drive,
		})
	}
	return jobs, nil
}

// recordJob writes the job's full ingested stream as a trace file.
func recordJob(path string, jb job) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	stream := slices.Values(slices.Concat(jb.build, jb.drive))
	if err := trace.WriteAll(f, stream); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// run drives the job's warm-up untimed and its drive stream timed into a
// freshly configured maintainer at the requested GOMAXPROCS, then
// verifies the final structure against the greedy oracle — the
// acceptance gate every benchmarked engine must pass on every scenario.
func run(jb job, seed uint64, name string, shards, window, procs int, opts ...dynmis.Option) engineRun {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	m, err := dynmis.New(append(opts, dynmis.WithSeed(seed))...)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if len(jb.build) > 0 {
		m.Grow(jb.nodes)
		if _, err := m.Drive(ctx, slices.Values(jb.build)); err != nil {
			fatal(err)
		}
	}
	var driveOpts []dynmis.DriveOption
	if window > 0 {
		driveOpts = append(driveOpts, dynmis.DriveWindow(window))
	}
	start := time.Now()
	sum, err := m.Drive(ctx, slices.Values(jb.drive), driveOpts...)
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}
	return engineRun{
		Engine:        name,
		Shards:        shards,
		Window:        window,
		Gomaxprocs:    procs,
		Updates:       sum.Changes,
		Seconds:       elapsed.Seconds(),
		UpdatesPerSec: float64(sum.Changes) / elapsed.Seconds(),
		Adjustments:   sum.Total.Adjustments,
		SSize:         sum.Total.SSize,
		CrossShard:    sum.Total.CrossShard,
		Steals:        sum.Total.Steals,
		Verified:      m.Verify() == nil,
	}
}

// benchEngineNames are the selectable -engines values, in report order.
var benchEngineNames = []string{
	"sequential", "sequential-batch", "sharded",
	"sequential-struct", "gupta-khan", "aoss",
}

// parseEngines resolves -engines into a selection set; an empty flag
// selects everything, unknown names are rejected with the valid list.
func parseEngines(csv string) (map[string]bool, error) {
	sel := make(map[string]bool, len(benchEngineNames))
	if csv == "" {
		for _, name := range benchEngineNames {
			sel[name] = true
		}
		return sel, nil
	}
	for _, s := range strings.Split(csv, ",") {
		name := strings.TrimSpace(s)
		if !slices.Contains(benchEngineNames, name) {
			return nil, fmt.Errorf("-engines: unknown engine %q (valid: %s)",
				name, strings.Join(benchEngineNames, ", "))
		}
		sel[name] = true
	}
	return sel, nil
}

func defaultShards() string {
	p := runtime.GOMAXPROCS(0)
	if p < 4 {
		p = 4
	}
	set := map[int]bool{1: true, 4: true, p: true}
	var ps []int
	for q := range set {
		ps = append(ps, q)
	}
	slices.Sort(ps)
	strs := make([]string, len(ps))
	for i, q := range ps {
		strs[i] = strconv.Itoa(q)
	}
	return strings.Join(strs, ",")
}

func parseCounts(csv, flagName string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad %s entry %q", flagName, s)
		}
		out = append(out, p)
	}
	return out, nil
}

func label(er engineRun) string {
	if er.Shards > 0 {
		return fmt.Sprintf("%s-%d", er.Engine, er.Shards)
	}
	return er.Engine
}

func churnHeadline(res scenarioResult) headline {
	h := headline{Scenario: res.Scenario}
	for _, er := range res.Engines {
		if er.Engine == "sequential" {
			h.SequentialPerSec = er.UpdatesPerSec
		}
		if er.Engine == "sequential-batch" {
			h.BatchPerSec = er.UpdatesPerSec
		}
		if er.Engine == "sharded" && er.Shards >= 4 && er.UpdatesPerSec > h.ShardedPerSec {
			h.ShardedPerSec = er.UpdatesPerSec
			h.ShardedShards = er.Shards
			h.ShardedGomaxprocs = er.Gomaxprocs
			h.ScalingEfficiency = er.ScalingEfficiency
		}
	}
	if h.SequentialPerSec > 0 {
		h.Speedup = h.ShardedPerSec / h.SequentialPerSec
	}
	if h.BatchPerSec > 0 {
		h.SpeedupVsBatch = h.ShardedPerSec / h.BatchPerSec
	}
	return h
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
