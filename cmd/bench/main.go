// Command bench is the unified benchmark harness: it drives every
// workload scenario (churn, sliding-window, power-law, adversarial
// deletions) against the sequential and sharded update engines, verifies
// each final structure as maximal and independent, and emits
// machine-readable results to BENCH_dynmis.json so the performance
// trajectory is comparable across commits.
//
// Usage:
//
//	bench [-n 2000] [-steps 20000] [-shards 1,4,8] [-window 512]
//	      [-scenarios churn,sliding-window] [-seed 42] [-quick]
//	      [-out BENCH_dynmis.json]
//
// Engines:
//
//   - sequential:      core.Template, one recovery cascade per change —
//     the paper's per-update path.
//   - sequential-batch: core.Template.ApplyBatch over windows — batched
//     staging, still a single-threaded cascade.
//   - sharded-P:       internal/shard with P worker shards, windowed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/shard"
	"dynmis/internal/workload"
)

// engineRun is one (scenario, engine) measurement in the emitted JSON.
type engineRun struct {
	Engine        string  `json:"engine"`
	Shards        int     `json:"shards,omitempty"`
	Window        int     `json:"window,omitempty"`
	Updates       int     `json:"updates"`
	Seconds       float64 `json:"seconds"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	Adjustments   int     `json:"adjustments"`
	SSize         int     `json:"s_size"`
	CrossShard    int     `json:"cross_shard,omitempty"`
	Verified      bool    `json:"verified"`
}

type scenarioResult struct {
	Scenario    string      `json:"scenario"`
	Description string      `json:"description"`
	Nodes       int         `json:"initial_nodes"`
	Engines     []engineRun `json:"engines"`
}

type benchOutput struct {
	Schema     string           `json:"schema"`
	Go         string           `json:"go"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Seed       uint64           `json:"seed"`
	Steps      int              `json:"steps"`
	Scenarios  []scenarioResult `json:"scenarios"`
	Headline   headline         `json:"headline"`
}

// headline is the number the ROADMAP tracks: sharded updates/sec on the
// churn scenario, against both baselines. speedup (vs the per-update
// sequential path) mixes the windowed-staging gain with the parallel
// cascade; speedup_vs_batch (vs the single-threaded batched template)
// isolates what sharding itself buys, so both are recorded.
type headline struct {
	Scenario         string  `json:"scenario"`
	SequentialPerSec float64 `json:"sequential_updates_per_sec"`
	BatchPerSec      float64 `json:"sequential_batch_updates_per_sec"`
	ShardedPerSec    float64 `json:"sharded_updates_per_sec"`
	ShardedShards    int     `json:"sharded_shards"`
	Speedup          float64 `json:"speedup"`
	SpeedupVsBatch   float64 `json:"speedup_vs_batch"`
}

func main() {
	var (
		n         = flag.Int("n", 2000, "initial node count (adversarial-deletion is capped at 200)")
		steps     = flag.Int("steps", 20000, "timed update steps per engine")
		shardsCSV = flag.String("shards", defaultShards(), "comma-separated shard counts to benchmark")
		window    = flag.Int("window", shard.DefaultWindow, "batch window for the batched/sharded engines")
		scenCSV   = flag.String("scenarios", "", "comma-separated scenario names (default: all)")
		seed      = flag.Uint64("seed", 42, "random seed (engines and workload generation)")
		quick     = flag.Bool("quick", false, "smoke-test sizes (n=300, steps=3000)")
		out       = flag.String("out", "BENCH_dynmis.json", "output JSON path")
	)
	flag.Parse()
	if *quick {
		*n, *steps = 300, 3000
	}

	scenarios := workload.Scenarios()
	if *scenCSV != "" {
		scenarios = scenarios[:0]
		for _, name := range strings.Split(*scenCSV, ",") {
			sc, ok := workload.ScenarioByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown scenario %q\n", name)
				os.Exit(2)
			}
			scenarios = append(scenarios, sc)
		}
	}
	shardCounts, err := parseShards(*shardsCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	output := benchOutput{
		Schema:     "dynmis-bench/v1",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Steps:      *steps,
	}

	for _, sc := range scenarios {
		size := *n
		if sc.Name == "adversarial-deletion" && size > 200 {
			size = 200 // K_{k,k} warm-up is quadratic in k
		}
		rng := rand.New(rand.NewPCG(*seed, 0xbe7c4))
		build := sc.Build(rng, size)
		drive := sc.Drive(rng, workload.BuildGraph(build), *steps)

		res := scenarioResult{Scenario: sc.Name, Description: sc.Description, Nodes: size}
		fmt.Printf("== %s (n=%d, %d updates)\n", sc.Name, size, len(drive))

		res.Engines = append(res.Engines,
			runSequential(*seed, build, drive),
			runSequentialBatch(*seed, build, drive, *window))
		for _, p := range shardCounts {
			res.Engines = append(res.Engines, runSharded(*seed, build, drive, p, *window))
		}
		for _, er := range res.Engines {
			fmt.Printf("   %-18s %12.0f updates/s  adj=%-6d |S|=%-6d xshard=%-6d verified=%v\n",
				label(er), er.UpdatesPerSec, er.Adjustments, er.SSize, er.CrossShard, er.Verified)
			if !er.Verified {
				fmt.Fprintf(os.Stderr, "FATAL: %s/%s failed MIS verification\n", sc.Name, label(er))
				os.Exit(1)
			}
		}
		output.Scenarios = append(output.Scenarios, res)

		if sc.Name == "churn" {
			output.Headline = churnHeadline(res)
		}
	}

	if output.Headline.Scenario != "" {
		h := output.Headline
		fmt.Printf("\nheadline: churn %0.f updates/s sequential -> %0.f updates/s sharded-%d (%.2fx; %.2fx vs single-threaded batch)\n",
			h.SequentialPerSec, h.ShardedPerSec, h.ShardedShards, h.Speedup, h.SpeedupVsBatch)
	}

	data, err := json.MarshalIndent(output, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func defaultShards() string {
	p := runtime.GOMAXPROCS(0)
	if p < 4 {
		p = 4
	}
	set := map[int]bool{1: true, 4: true, p: true}
	var ps []int
	for q := range set {
		ps = append(ps, q)
	}
	sort.Ints(ps)
	strs := make([]string, len(ps))
	for i, q := range ps {
		strs[i] = strconv.Itoa(q)
	}
	return strings.Join(strs, ",")
}

func parseShards(csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad -shards entry %q", s)
		}
		out = append(out, p)
	}
	return out, nil
}

func label(er engineRun) string {
	if er.Shards > 0 {
		return fmt.Sprintf("%s-%d", er.Engine, er.Shards)
	}
	return er.Engine
}

// verify checks maximality+independence directly and the π-invariant —
// the acceptance gate every benchmarked engine must pass on every
// scenario.
type verifiable interface {
	Graph() *graph.Graph
	State() map[graph.NodeID]core.Membership
	Check() error
}

func verify(e verifiable) bool {
	return core.CheckMIS(e.Graph(), e.State()) == nil && e.Check() == nil
}

func runSequential(seed uint64, build, drive []graph.Change) engineRun {
	eng := core.NewTemplate(seed)
	mustApply(eng.ApplyAll(build))
	start := time.Now()
	rep, err := eng.ApplyAll(drive)
	elapsed := time.Since(start)
	mustApply(rep, err)
	return result("sequential", 0, 0, len(drive), elapsed, rep, verify(eng))
}

func runSequentialBatch(seed uint64, build, drive []graph.Change, window int) engineRun {
	eng := core.NewTemplate(seed)
	mustApply(eng.ApplyAll(build))
	var total core.Report
	start := time.Now()
	for lo := 0; lo < len(drive); lo += window {
		hi := min(lo+window, len(drive))
		rep, err := eng.ApplyBatch(drive[lo:hi])
		mustApply(rep, err)
		total.Add(rep)
	}
	elapsed := time.Since(start)
	return result("sequential-batch", 0, window, len(drive), elapsed, total, verify(eng))
}

func runSharded(seed uint64, build, drive []graph.Change, shards, window int) engineRun {
	eng := shard.New(seed, shards)
	eng.SetWindow(window)
	mustApply(eng.ApplyAll(build))
	start := time.Now()
	rep, err := eng.ApplyAll(drive)
	elapsed := time.Since(start)
	mustApply(rep, err)
	return result("sharded", shards, window, len(drive), elapsed, rep, verify(eng))
}

func result(name string, shards, window, updates int, elapsed time.Duration, rep core.Report, verified bool) engineRun {
	return engineRun{
		Engine:        name,
		Shards:        shards,
		Window:        window,
		Updates:       updates,
		Seconds:       elapsed.Seconds(),
		UpdatesPerSec: float64(updates) / elapsed.Seconds(),
		Adjustments:   rep.Adjustments,
		SSize:         rep.SSize,
		CrossShard:    rep.CrossShard,
		Verified:      verified,
	}
}

func churnHeadline(res scenarioResult) headline {
	h := headline{Scenario: res.Scenario}
	for _, er := range res.Engines {
		if er.Engine == "sequential" {
			h.SequentialPerSec = er.UpdatesPerSec
		}
		if er.Engine == "sequential-batch" {
			h.BatchPerSec = er.UpdatesPerSec
		}
		if er.Engine == "sharded" && er.Shards >= 4 && er.UpdatesPerSec > h.ShardedPerSec {
			h.ShardedPerSec = er.UpdatesPerSec
			h.ShardedShards = er.Shards
		}
	}
	if h.SequentialPerSec > 0 {
		h.Speedup = h.ShardedPerSec / h.SequentialPerSec
	}
	if h.BatchPerSec > 0 {
		h.SpeedupVsBatch = h.ShardedPerSec / h.BatchPerSec
	}
	return h
}

func mustApply(_ core.Report, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
