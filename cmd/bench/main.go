// Command bench is the unified benchmark harness: it drives every
// workload scenario (churn, sliding-window, power-law, single-node
// churn, adversarial deletions) through the streaming ingestion API
// (Maintainer.Drive)
// against the sequential and sharded update engines, verifies each final
// structure against the greedy oracle, and emits machine-readable
// results to BENCH_dynmis.json so the performance trajectory is
// comparable across commits.
//
// Usage:
//
//	bench [-n 2000] [-steps 20000] [-shards 1,4,8] [-window 512]
//	      [-gomaxprocs 1,2,4,8,16] [-scenarios churn,sliding-window]
//	      [-engines sequential,sharded,gupta-khan] [-seed 42] [-quick]
//	      [-min-speedup 1.0] [-record trace.jsonl] [-replay trace.jsonl]
//	      [-big] [-big-n 100000,1000000] [-big-steps 100000]
//	      [-big-engines sequential,sharded,gupta-khan,aoss] [-mem]
//	      [-out BENCH_dynmis.json]
//
// Engines (select a subset with -engines; default all):
//
//   - sequential:      EngineTemplate driven change by change — the
//     paper's per-update path. Always timed at GOMAXPROCS=1: it is the
//     single-core baseline every scaling ratio divides by.
//   - sequential-batch: EngineTemplate driven through DriveWindow —
//     batched staging, still a single-threaded cascade (GOMAXPROCS=1).
//   - sharded-P:       EngineSharded with P worker shards, windowed,
//     timed once per -gomaxprocs value. Each run records the GOMAXPROCS
//     it was timed at and its scaling efficiency:
//     (rate / sequential rate) / min(P, GOMAXPROCS) — the fraction of
//     ideal linear scaling the run achieved.
//   - sequential-struct: EngineSequential, the §6 single-machine data
//     structure, driven change by change at GOMAXPROCS=1.
//   - gupta-khan, aoss: the competitor dynamic-MIS engines, driven
//     change by change at GOMAXPROCS=1 — the head-to-head rows against
//     the paper's per-update path.
//
// Besides the oblivious scenarios, -scenarios accepts the adaptive-
// adversary suite (adaptive-oblivious, adaptive-mis, adaptive-hub,
// adaptive-gk). An adaptive drive cannot be generated ahead of an
// engine, so bench resolves it once against the template engine
// (Maintainer.DriveInteractive) and benchmarks the captured stream —
// every engine, and any -record'ed trace of it, replays the adversary's
// realized decisions bit for bit. They are not in the default set, so
// the committed BENCH_dynmis.json shape is unchanged unless asked for.
//
// -record captures the full ingested stream (warm-up + drive) of the
// selected scenario as a dynmis/trace JSONL file; -replay benchmarks a
// previously recorded trace instead of generating a workload, timing the
// whole trace from the empty graph — the same bytes drive every engine,
// bit for bit.
//
// -min-speedup gates CI smoke runs: after benchmarking, exit nonzero
// unless the headline sharded rate reaches the given multiple of the
// sequential rate.
//
// -big runs the big-graph tier: streamed capped-power-law and
// city-scale geometric scenarios (workload.BigScenarios) at -big-n
// sizes through the arena-backed engines, reporting the deterministic
// bytes/node account and the process peak RSS per run — nothing is
// materialized, so the tier runs at n=10^6 (make bench-big). -mem
// additionally records post-GC live-heap deltas for every run in both
// tiers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"time"

	"dynmis"
	"dynmis/trace"
	"dynmis/workload"
)

// Schema identifies the output format. v2 moved gomaxprocs from the top
// level into every engine run (a file may now mix runs at different
// GOMAXPROCS) and added per-run scaling_efficiency. v3 added the "serve"
// section: the dynmisd daemon benchmarked over real loopback HTTP
// (ingest throughput and subscriber-visible event latency). v4 added
// the memory columns (bytes_per_node, total_bytes on arena-backed
// runs; heap_delta_bytes under -mem) and the "big" section: the
// big-graph tier (-big) with per-run bytes_per_node and peak_rss_kb.
const Schema = "dynmis-bench/v4"

// engineRun is one (scenario, engine, gomaxprocs) measurement in the
// emitted JSON.
type engineRun struct {
	Engine        string  `json:"engine"`
	Shards        int     `json:"shards,omitempty"`
	Window        int     `json:"window,omitempty"`
	Gomaxprocs    int     `json:"gomaxprocs"`
	Updates       int     `json:"updates"`
	Seconds       float64 `json:"seconds"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// ScalingEfficiency is (rate / sequential rate) / min(shards,
	// gomaxprocs) for sharded runs: 1.0 is ideal linear scaling over the
	// exploitable parallelism, values near 1/min(P,procs) mean the run
	// scaled not at all. Zero for the sequential engines.
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	Adjustments       int     `json:"adjustments"`
	SSize             int     `json:"s_size"`
	CrossShard        int     `json:"cross_shard,omitempty"`
	Steals            int     `json:"steals,omitempty"`
	// The memory columns (schema v4). BytesPerNode and TotalBytes come
	// from the engine's deterministic retained-bytes account and are
	// zero for the message-passing engines (no memory capability);
	// HeapDeltaBytes is the post-GC live-heap growth across the run,
	// recorded only under -mem (it is machine- and GC-timing-noisy, so
	// it never gates anything).
	BytesPerNode   float64 `json:"bytes_per_node,omitempty"`
	TotalBytes     int64   `json:"total_bytes,omitempty"`
	HeapDeltaBytes int64   `json:"heap_delta_bytes,omitempty"`
	Verified       bool    `json:"verified"`
}

type scenarioResult struct {
	Scenario    string      `json:"scenario"`
	Description string      `json:"description"`
	Nodes       int         `json:"initial_nodes"`
	Engines     []engineRun `json:"engines"`
}

type benchOutput struct {
	Schema    string              `json:"schema"`
	Go        string              `json:"go"`
	NumCPU    int                 `json:"num_cpu"`
	Seed      uint64              `json:"seed"`
	Steps     int                 `json:"steps"`
	Scenarios []scenarioResult    `json:"scenarios"`
	Headline  headline            `json:"headline"`
	Big       []bigScenarioResult `json:"big,omitempty"`
	Serve     *serveResult        `json:"serve,omitempty"`
}

// headline is the number the ROADMAP tracks: sharded updates/sec on the
// churn scenario, against both baselines. speedup (vs the per-update
// sequential path) mixes the windowed-staging gain with the parallel
// cascade; speedup_vs_batch (vs the single-threaded batched template)
// isolates what sharding itself buys, so both are recorded, along with
// the GOMAXPROCS and scaling efficiency of the winning sharded run.
type headline struct {
	Scenario          string  `json:"scenario"`
	SequentialPerSec  float64 `json:"sequential_updates_per_sec"`
	BatchPerSec       float64 `json:"sequential_batch_updates_per_sec"`
	ShardedPerSec     float64 `json:"sharded_updates_per_sec"`
	ShardedShards     int     `json:"sharded_shards"`
	ShardedGomaxprocs int     `json:"sharded_gomaxprocs"`
	Speedup           float64 `json:"speedup"`
	SpeedupVsBatch    float64 `json:"speedup_vs_batch"`
	ScalingEfficiency float64 `json:"scaling_efficiency"`
}

// job is one benchmarkable workload: an untimed warm-up and a timed
// drive stream, replayable across engines.
type job struct {
	name        string
	description string
	nodes       int
	build       []dynmis.Change
	drive       []dynmis.Change
}

func main() {
	var (
		n          = flag.Int("n", 2000, "initial node count (scenarios may cap it)")
		steps      = flag.Int("steps", 20000, "timed update steps per engine")
		shardsCSV  = flag.String("shards", defaultShards(), "comma-separated shard counts to benchmark")
		window     = flag.Int("window", 512, "batch window for the batched/sharded engines")
		gmpCSV     = flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS values for the sharded runs (default: the current value)")
		scenCSV    = flag.String("scenarios", "", "comma-separated scenario names (default: all)")
		enginesCSV = flag.String("engines", "", "comma-separated subset of benchmark engines (default: all; valid: "+strings.Join(benchEngineNames, ", ")+")")
		seed       = flag.Uint64("seed", 42, "random seed (engines and workload generation)")
		quick      = flag.Bool("quick", false, "smoke-test sizes (n=300, steps=3000)")
		record     = flag.String("record", "", "record the ingested stream (warm-up + drive) to this trace file; requires exactly one scenario")
		replay     = flag.String("replay", "", "benchmark a recorded trace instead of generating workloads")
		out        = flag.String("out", "BENCH_dynmis.json", "output JSON path")
		serveSteps = flag.Int("serve-steps", 50000, "updates driven over the wire in the serve benchmark (0 disables it)")
		serveSubs  = flag.Int("serve-subs", 64, "concurrent event subscribers in the serve benchmark")
		baseline   = flag.String("baseline", "", "compare per-scenario updates/sec against this previously emitted JSON (e.g. the committed BENCH_dynmis.json)")
		minSpeedup = flag.Float64("min-speedup", 0, "exit nonzero unless the headline sharded speedup vs sequential reaches this factor")
		big        = flag.Bool("big", false, "run the big-graph tier (streamed million-node scenarios with memory columns)")
		bigN       = flag.String("big-n", "100000,1000000", "comma-separated sizes for the big tier")
		bigSteps   = flag.Int("big-steps", 100000, "timed churn steps per big-tier engine run")
		bigEngines = flag.String("big-engines", defaultBigEngines, "comma-separated big-tier engines (valid: "+strings.Join(bigEngineNames, ", ")+")")
		mem        = flag.Bool("mem", false, "record post-GC live-heap deltas (heap_delta_bytes) for every run")
	)
	flag.Parse()
	memFlag = *mem
	if *quick {
		*n, *steps = 300, 3000
		*serveSteps, *serveSubs = 5000, 8
	}
	if *record != "" && *replay != "" {
		fatal(fmt.Errorf("-record and -replay are mutually exclusive"))
	}

	sel, err := parseEngines(*enginesCSV)
	if err != nil {
		fatal(err)
	}
	jobs, err := buildJobs(*scenCSV, *replay, *seed, *n, *steps)
	if err != nil {
		fatal(err)
	}
	if *record != "" {
		if len(jobs) != 1 {
			fatal(fmt.Errorf("-record needs exactly one scenario (have %d); pass -scenarios", len(jobs)))
		}
		if err := recordJob(*record, jobs[0]); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d changes to %s\n", len(jobs[0].build)+len(jobs[0].drive), *record)
	}
	shardCounts, err := parseCounts(*shardsCSV, "-shards")
	if err != nil {
		fatal(err)
	}
	gmpList := []int{runtime.GOMAXPROCS(0)}
	if *gmpCSV != "" {
		if gmpList, err = parseCounts(*gmpCSV, "-gomaxprocs"); err != nil {
			fatal(err)
		}
	}

	output := benchOutput{
		Schema: Schema,
		Go:     runtime.Version(),
		NumCPU: runtime.NumCPU(),
		Seed:   *seed,
		Steps:  *steps,
	}

	for _, jb := range jobs {
		res := scenarioResult{Scenario: jb.name, Description: jb.description, Nodes: jb.nodes}
		fmt.Printf("== %s (n=%d, %d updates)\n", jb.name, jb.nodes, len(jb.drive))

		// The sequential engines are the single-core baselines: they are
		// always timed at GOMAXPROCS=1, whatever the sharded matrix is.
		var seq engineRun
		if sel["sequential"] {
			seq = run(jb, *seed, "sequential", 0, 0, 1, dynmis.WithEngine(dynmis.EngineTemplate))
			res.Engines = append(res.Engines, seq)
		}
		if sel["sequential-batch"] {
			res.Engines = append(res.Engines,
				run(jb, *seed, "sequential-batch", 0, *window, 1, dynmis.WithEngine(dynmis.EngineTemplate)))
		}
		if sel["sharded"] {
			for _, gmp := range gmpList {
				for _, p := range shardCounts {
					er := run(jb, *seed, "sharded", p, *window, gmp,
						dynmis.WithEngine(dynmis.EngineSharded), dynmis.WithShards(p))
					if seq.UpdatesPerSec > 0 {
						er.ScalingEfficiency = er.UpdatesPerSec / seq.UpdatesPerSec / float64(min(p, gmp))
					}
					res.Engines = append(res.Engines, er)
				}
			}
		}
		// The single-machine per-update engines: the §6 sequential
		// structure and the competitor algorithms, head to head.
		for _, sm := range []struct {
			name   string
			engine dynmis.Engine
		}{
			{"sequential-struct", dynmis.EngineSequential},
			{"gupta-khan", dynmis.EngineGuptaKhan},
			{"aoss", dynmis.EngineAOSS},
		} {
			if sel[sm.name] {
				res.Engines = append(res.Engines,
					run(jb, *seed, sm.name, 0, 0, 1, dynmis.WithEngine(sm.engine)))
			}
		}
		for _, er := range res.Engines {
			fmt.Printf("   %-18s p=%-3d %12.0f updates/s  eff=%-5.2f adj=%-6d |S|=%-6d xshard=%-6d steals=%-5d verified=%v\n",
				label(er), er.Gomaxprocs, er.UpdatesPerSec, er.ScalingEfficiency,
				er.Adjustments, er.SSize, er.CrossShard, er.Steals, er.Verified)
			if !er.Verified {
				fatal(fmt.Errorf("FATAL: %s/%s failed MIS verification", jb.name, label(er)))
			}
		}
		output.Scenarios = append(output.Scenarios, res)

		if jb.name == "churn" {
			output.Headline = churnHeadline(res)
		}
	}

	if output.Headline.Scenario != "" && output.Headline.ShardedPerSec > 0 {
		h := output.Headline
		fmt.Printf("\nheadline: churn %0.f updates/s sequential -> %0.f updates/s sharded-%d@p%d (%.2fx; %.2fx vs single-threaded batch; efficiency %.2f)\n",
			h.SequentialPerSec, h.ShardedPerSec, h.ShardedShards, h.ShardedGomaxprocs,
			h.Speedup, h.SpeedupVsBatch, h.ScalingEfficiency)
	}

	// The big-graph tier: streamed scenarios at -big-n sizes with the
	// memory columns. Runs after the regular tier so its far larger
	// peak-RSS watermarks cannot contaminate it, and sizes ascend within
	// it for the same reason.
	if *big {
		sizes, err := parseCounts(*bigN, "-big-n")
		if err != nil {
			fatal(err)
		}
		slices.Sort(sizes)
		output.Big, err = runBig(*seed, sizes, *bigSteps, *bigEngines, *window, memFlag)
		if err != nil {
			fatal(err)
		}
	}

	// The serve section: dynmisd over real loopback HTTP. Skipped in
	// -replay mode (the section always benches the churn scenario at its
	// own size) and when -serve-steps is 0.
	if *serveSteps > 0 && *replay == "" {
		fmt.Printf("\n== serve (churn over HTTP, %d updates, %d subscribers)\n", *serveSteps, *serveSubs)
		sres, err := runServe(*seed, *n, *serveSteps, *serveSubs)
		if err != nil {
			fatal(err)
		}
		output.Serve = sres
		fmt.Printf("   ingest %12.0f updates/s   %d events x %d subscribers   latency p50 %.2fms p99 %.2fms\n",
			sres.IngestPerSec, sres.Events, sres.Subscribers, sres.LatencyP50Ms, sres.LatencyP99Ms)
	}

	// Load the baseline before writing: -baseline and -out may name the
	// same file (regenerating the committed numbers while reporting the
	// change against them).
	var baseData []byte
	if *baseline != "" {
		baseData, err = os.ReadFile(*baseline)
		if err != nil {
			fatal(fmt.Errorf("baseline: %w", err))
		}
	}

	data, err := json.MarshalIndent(output, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if baseData != nil {
		if err := printDelta(os.Stdout, output, *baseline, baseData); err != nil {
			fatal(err)
		}
	}

	if *minSpeedup > 0 {
		h := output.Headline
		if h.Scenario == "" {
			fatal(fmt.Errorf("-min-speedup needs the churn scenario in the run set"))
		}
		if h.Speedup < *minSpeedup {
			fatal(fmt.Errorf("headline speedup %.2fx below the -min-speedup gate %.2fx (sharded %.0f vs sequential %.0f updates/s)",
				h.Speedup, *minSpeedup, h.ShardedPerSec, h.SequentialPerSec))
		}
		fmt.Printf("min-speedup gate passed: %.2fx >= %.2fx\n", h.Speedup, *minSpeedup)
	}
}

// baselineFile parses a previously emitted output for diffing.
type baselineFile struct {
	Schema    string              `json:"schema"`
	Steps     int                 `json:"steps"`
	Scenarios []scenarioResult    `json:"scenarios"`
	Big       []bigScenarioResult `json:"big"`
}

// printDelta renders this run's per-scenario updates/sec — and, where
// both sides carry them, the memory columns — against a previously
// emitted JSON file. It is a report, not a gate: engines whose scenario
// or configuration is absent from the baseline print "new", and
// differing -steps merely change measurement noise. Two comparisons are
// refused outright because their ratios would be meaningless: a
// baseline from a different schema version (field meanings shifted —
// regenerate it with this binary) and entries measured at a different
// GOMAXPROCS.
func printDelta(w io.Writer, cur benchOutput, path string, data []byte) error {
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Schema != Schema {
		return fmt.Errorf("baseline %s uses schema %q but this binary emits %q: cross-schema runs are not comparable — regenerate the baseline with this binary",
			path, base.Schema, Schema)
	}
	// A baseline may carry a whole GOMAXPROCS matrix per engine (the
	// committed file does), so match on (scenario, engine, procs) first;
	// the name-only map is kept solely to distinguish "measured at a
	// different GOMAXPROCS" from "not in the baseline at all".
	old := make(map[string]engineRun)
	procsOf := make(map[string][]int)
	for _, sc := range base.Scenarios {
		for _, er := range sc.Engines {
			key := sc.Scenario + "/" + label(er)
			old[fmt.Sprintf("%s@%d", key, er.Gomaxprocs)] = er
			procsOf[key] = append(procsOf[key], er.Gomaxprocs)
		}
	}
	fmt.Fprintf(w, "\ndelta vs %s (steps %d -> %d):\n", path, base.Steps, cur.Steps)
	for _, sc := range cur.Scenarios {
		for _, er := range sc.Engines {
			key := sc.Scenario + "/" + label(er)
			b, ok := old[fmt.Sprintf("%s@%d", key, er.Gomaxprocs)]
			switch {
			case ok && b.UpdatesPerSec > 0:
				memCol := ""
				if er.BytesPerNode > 0 && b.BytesPerNode > 0 {
					memCol = fmt.Sprintf("  %7.1f B/node %8.2fx (baseline %.1f)",
						er.BytesPerNode, er.BytesPerNode/b.BytesPerNode, b.BytesPerNode)
				}
				fmt.Fprintf(w, "  %-32s %12.0f updates/s  %8.2fx (baseline %.0f)%s\n",
					key, er.UpdatesPerSec, er.UpdatesPerSec/b.UpdatesPerSec, b.UpdatesPerSec, memCol)
			case len(procsOf[key]) > 0:
				fmt.Fprintf(w, "  %-32s %12.0f updates/s   (not comparable: baseline at GOMAXPROCS=%v, this run at %d)\n",
					key, er.UpdatesPerSec, procsOf[key], er.Gomaxprocs)
			default:
				fmt.Fprintf(w, "  %-32s %12.0f updates/s   (new)\n", key, er.UpdatesPerSec)
			}
		}
	}
	printBigDelta(w, cur.Big, base.Big)
	return nil
}

// printBigDelta diffs the big-tier rows on both rate and bytes/node,
// keyed by (scenario, n, engine).
func printBigDelta(w io.Writer, cur, base []bigScenarioResult) {
	if len(cur) == 0 {
		return
	}
	old := make(map[string]bigRun)
	for _, sc := range base {
		for _, br := range sc.Runs {
			old[fmt.Sprintf("%s@%d/%s", sc.Scenario, sc.N, bigLabel(br))] = br
		}
	}
	for _, sc := range cur {
		for _, br := range sc.Runs {
			key := fmt.Sprintf("%s@%d/%s", sc.Scenario, sc.N, bigLabel(br))
			b, ok := old[key]
			if !ok {
				fmt.Fprintf(w, "  %-32s %12.0f updates/s  %7.1f B/node   (new)\n",
					key, br.UpdatesPerSec, br.BytesPerNode)
				continue
			}
			fmt.Fprintf(w, "  %-32s %12.0f updates/s  %8.2fx (baseline %.0f)  %7.1f B/node %8.2fx (baseline %.1f)\n",
				key, br.UpdatesPerSec, br.UpdatesPerSec/b.UpdatesPerSec, b.UpdatesPerSec,
				br.BytesPerNode, br.BytesPerNode/b.BytesPerNode, b.BytesPerNode)
		}
	}
}

// buildJobs resolves the workload set: recorded-trace replay, or the
// selected scenarios instantiated at the canonical workload rng.
func buildJobs(scenCSV, replay string, seed uint64, n, steps int) ([]job, error) {
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		cs, err := trace.ReadAll(f)
		if err != nil {
			return nil, fmt.Errorf("replay %s: %w", replay, err)
		}
		return []job{{
			name:        "replay",
			description: fmt.Sprintf("recorded trace %s, timed from the empty graph", replay),
			drive:       cs,
		}}, nil
	}

	scenarios := workload.Scenarios()
	if scenCSV != "" {
		scenarios = scenarios[:0]
		for _, name := range strings.Split(scenCSV, ",") {
			sc, ok := workload.ScenarioByName(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown scenario %q", name)
			}
			scenarios = append(scenarios, sc)
		}
	}
	jobs := make([]job, 0, len(scenarios))
	for _, sc := range scenarios {
		if sc.IsAdaptive() {
			jb, err := resolveAdaptive(sc, seed, n, steps)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, jb)
			continue
		}
		inst := sc.Instantiate(seed, n, steps)
		jobs = append(jobs, job{
			name:        sc.Name,
			description: sc.Description,
			nodes:       inst.Nodes,
			build:       inst.Build,
			drive:       inst.Drive,
		})
	}
	return jobs, nil
}

// resolveAdaptive materializes an adaptive scenario's drive phase by
// running its adversary engine-in-the-loop against the template engine
// (DriveInteractive) and capturing the resolved change stream through
// DriveObserver. The captured slice is an ordinary oblivious stream:
// every benchmarked engine — and a -record'ed trace of it — replays the
// adversary's realized decisions bit for bit, which is what makes
// adaptive runs timeable on the same identical-stream footing as every
// other scenario.
func resolveAdaptive(sc workload.Scenario, seed uint64, n, steps int) (job, error) {
	n = sc.ClampNodes(n)
	rng := workload.Rand(seed)
	build := sc.Build(rng, n)
	m, err := dynmis.New(dynmis.WithEngine(dynmis.EngineTemplate), dynmis.WithSeed(seed))
	if err != nil {
		return job{}, err
	}
	ctx := context.Background()
	m.Grow(n)
	if _, err := m.Drive(ctx, slices.Values(build)); err != nil {
		return job{}, fmt.Errorf("adaptive %s warm-up: %w", sc.Name, err)
	}
	src := sc.NewAdaptive(rng, workload.BuildGraph(build), m.MIS(), steps)
	drive := make([]dynmis.Change, 0, steps)
	obs := dynmis.DriveObserver(func(applied []dynmis.Change, _ dynmis.Report) {
		drive = append(drive, applied...)
	})
	if _, err := m.DriveInteractive(ctx, src, obs); err != nil {
		return job{}, fmt.Errorf("adaptive %s drive: %w", sc.Name, err)
	}
	return job{
		name:        sc.Name,
		description: sc.Description + " (resolved against the template engine, replayed obliviously)",
		nodes:       n,
		build:       build,
		drive:       drive,
	}, nil
}

// recordJob writes the job's full ingested stream as a trace file.
func recordJob(path string, jb job) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	stream := slices.Values(slices.Concat(jb.build, jb.drive))
	if err := trace.WriteAll(f, stream); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// memFlag mirrors -mem: record noisy live-heap deltas alongside the
// deterministic retained-bytes account.
var memFlag bool

// run drives the job's warm-up untimed and its drive stream timed into a
// freshly configured maintainer at the requested GOMAXPROCS, then
// verifies the final structure against the greedy oracle — the
// acceptance gate every benchmarked engine must pass on every scenario.
func run(jb job, seed uint64, name string, shards, window, procs int, opts ...dynmis.Option) engineRun {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	var before runtime.MemStats
	if memFlag {
		runtime.GC()
		runtime.ReadMemStats(&before)
	}
	m, err := dynmis.New(append(opts, dynmis.WithSeed(seed))...)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if len(jb.build) > 0 {
		m.Grow(jb.nodes)
		if _, err := m.Drive(ctx, slices.Values(jb.build)); err != nil {
			fatal(err)
		}
	}
	var driveOpts []dynmis.DriveOption
	if window > 0 {
		driveOpts = append(driveOpts, dynmis.DriveWindow(window))
	}
	start := time.Now()
	sum, err := m.Drive(ctx, slices.Values(jb.drive), driveOpts...)
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}
	er := engineRun{
		Engine:        name,
		Shards:        shards,
		Window:        window,
		Gomaxprocs:    procs,
		Updates:       sum.Changes,
		Seconds:       elapsed.Seconds(),
		UpdatesPerSec: float64(sum.Changes) / elapsed.Seconds(),
		Adjustments:   sum.Total.Adjustments,
		SSize:         sum.Total.SSize,
		CrossShard:    sum.Total.CrossShard,
		Steals:        sum.Total.Steals,
		Verified:      m.Verify() == nil,
	}
	// The deterministic retained-bytes account, on engines that keep
	// one (the arena-backed set); the message-passing engines leave the
	// columns zero.
	if prof, ok := m.MemoryProfile(); ok {
		er.BytesPerNode, er.TotalBytes = prof.BytesPerNode, prof.TotalBytes
	}
	if memFlag {
		var after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&after)
		er.HeapDeltaBytes = int64(after.HeapAlloc) - int64(before.HeapAlloc)
	}
	return er
}

// benchEngineNames are the selectable -engines values, in report order.
var benchEngineNames = []string{
	"sequential", "sequential-batch", "sharded",
	"sequential-struct", "gupta-khan", "aoss",
}

// parseEngines resolves -engines into a selection set; an empty flag
// selects everything, unknown names are rejected with the valid list.
func parseEngines(csv string) (map[string]bool, error) {
	sel := make(map[string]bool, len(benchEngineNames))
	if csv == "" {
		for _, name := range benchEngineNames {
			sel[name] = true
		}
		return sel, nil
	}
	for _, s := range strings.Split(csv, ",") {
		name := strings.TrimSpace(s)
		if !slices.Contains(benchEngineNames, name) {
			return nil, fmt.Errorf("-engines: unknown engine %q (valid: %s)",
				name, strings.Join(benchEngineNames, ", "))
		}
		sel[name] = true
	}
	return sel, nil
}

func defaultShards() string {
	p := runtime.GOMAXPROCS(0)
	if p < 4 {
		p = 4
	}
	set := map[int]bool{1: true, 4: true, p: true}
	var ps []int
	for q := range set {
		ps = append(ps, q)
	}
	slices.Sort(ps)
	strs := make([]string, len(ps))
	for i, q := range ps {
		strs[i] = strconv.Itoa(q)
	}
	return strings.Join(strs, ",")
}

func parseCounts(csv, flagName string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad %s entry %q", flagName, s)
		}
		out = append(out, p)
	}
	return out, nil
}

func label(er engineRun) string {
	if er.Shards > 0 {
		return fmt.Sprintf("%s-%d", er.Engine, er.Shards)
	}
	return er.Engine
}

func churnHeadline(res scenarioResult) headline {
	h := headline{Scenario: res.Scenario}
	for _, er := range res.Engines {
		if er.Engine == "sequential" {
			h.SequentialPerSec = er.UpdatesPerSec
		}
		if er.Engine == "sequential-batch" {
			h.BatchPerSec = er.UpdatesPerSec
		}
		if er.Engine == "sharded" && er.Shards >= 4 && er.UpdatesPerSec > h.ShardedPerSec {
			h.ShardedPerSec = er.UpdatesPerSec
			h.ShardedShards = er.Shards
			h.ShardedGomaxprocs = er.Gomaxprocs
			h.ScalingEfficiency = er.ScalingEfficiency
		}
	}
	if h.SequentialPerSec > 0 {
		h.Speedup = h.ShardedPerSec / h.SequentialPerSec
	}
	if h.BatchPerSec > 0 {
		h.SpeedupVsBatch = h.ShardedPerSec / h.BatchPerSec
	}
	return h
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
