package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"sync"
	"time"

	"dynmis"
	"dynmis/server"
	"dynmis/trace"
	"dynmis/workload"
)

// serveResult is the "serve" section of BENCH_dynmis.json: the daemon
// benchmarked over real HTTP on a loopback listener — ingest throughput
// through POST /v1/stream and the subscriber-visible event latency
// (publication in the daemon to receipt in the subscriber, measured
// against WireEvent.TS) across all concurrent subscribers.
type serveResult struct {
	Scenario      string  `json:"scenario"`
	Updates       int     `json:"updates"`
	Subscribers   int     `json:"subscribers"`
	Fsync         string  `json:"fsync"`
	IngestSeconds float64 `json:"ingest_seconds"`
	IngestPerSec  float64 `json:"ingest_updates_per_sec"`
	Events        uint64  `json:"events"`
	// EventsDelivered is Events × Subscribers: every subscriber received
	// the full gap-free stream or the run failed.
	EventsDelivered uint64  `json:"events_delivered"`
	LatencyP50Ms    float64 `json:"subscriber_latency_p50_ms"`
	LatencyP99Ms    float64 `json:"subscriber_latency_p99_ms"`
	GapFree         bool    `json:"gap_free"`
}

// runServe boots an in-process dynmisd core on a real loopback listener,
// attaches subs concurrent NDJSON subscribers, drives the churn scenario
// at the requested size over POST /v1/stream, and reports ingest
// throughput plus subscriber latency percentiles. Every subscriber's
// stream is checked for gaps; any gap fails the benchmark.
func runServe(seed uint64, n, steps, subs int) (*serveResult, error) {
	dir, err := os.MkdirTemp("", "dynmis-bench-serve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	srv, err := server.Open(server.Config{
		Seed:    seed,
		WALPath: filepath.Join(dir, "wal.jsonl"),
		Fsync:   server.FsyncInterval,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	sc, ok := workload.ScenarioByName("churn")
	if !ok {
		return nil, fmt.Errorf("churn scenario missing")
	}
	inst := sc.Instantiate(seed, n, steps)
	changes := slices.Concat(inst.Build, inst.Drive)

	// A local reference replay tells the subscribers how many events the
	// run produces, so each can read exactly that many and hang up.
	ref, err := dynmis.New(dynmis.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	var want uint64
	ref.Subscribe(func(dynmis.Event) { want++ })
	for _, c := range changes {
		if _, err := ref.Apply(c); err != nil {
			return nil, fmt.Errorf("reference replay: %w", err)
		}
	}

	// Subscribers attach before any traffic exists, so every latency
	// sample is a live measurement, not backlog replay.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: subs + 1}}
	type subOut struct {
		latencies []int64 // receipt - publication, nanoseconds
		err       error
	}
	outs := make([]subOut, subs)
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i] = subscribeAndMeasure(client, base, want)
		}()
	}

	var buf bytes.Buffer
	for _, c := range changes {
		line, err := trace.MarshalChange(c)
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/stream", "application/x-ndjson", &buf)
	if err != nil {
		return nil, err
	}
	var res server.IngestResult
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	ingestSeconds := time.Since(start).Seconds()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK || res.Rejected > 0 {
		return nil, fmt.Errorf("serve bench ingest: status %s, %d rejected", resp.Status, res.Rejected)
	}

	wg.Wait()
	var all []int64
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("serve bench subscriber %d: %w", i, o.err)
		}
		all = append(all, o.latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / 1e6
	}

	return &serveResult{
		Scenario:        "churn",
		Updates:         len(changes),
		Subscribers:     subs,
		Fsync:           server.FsyncInterval.String(),
		IngestSeconds:   ingestSeconds,
		IngestPerSec:    float64(len(changes)) / ingestSeconds,
		Events:          want,
		EventsDelivered: want * uint64(subs),
		LatencyP50Ms:    pct(0.50),
		LatencyP99Ms:    pct(0.99),
		GapFree:         true,
	}, nil
}

// subscribeAndMeasure holds one /v1/events subscription open from seq 0,
// verifying contiguity and timestamping each event's receipt, until
// `want` events have arrived.
func subscribeAndMeasure(client *http.Client, base string, want uint64) (out struct {
	latencies []int64
	err       error
}) {
	resp, err := client.Get(base + "/v1/events?from=0")
	if err != nil {
		out.err = err
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out.err = fmt.Errorf("GET /v1/events: %s", resp.Status)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	out.latencies = make([]int64, 0, want)
	var cursor uint64
	for cursor < want && sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		now := time.Now().UnixNano()
		var ev server.WireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			out.err = err
			return
		}
		if ev.Cause == "" {
			out.err = fmt.Errorf("unexpected terminal record at seq %d", cursor)
			return
		}
		if ev.Seq != cursor+1 {
			out.err = fmt.Errorf("gap: have %d, got %d", cursor, ev.Seq)
			return
		}
		cursor = ev.Seq
		out.latencies = append(out.latencies, now-ev.TS)
	}
	if cursor < want {
		out.err = fmt.Errorf("stream ended early at %d/%d: %v", cursor, want, sc.Err())
	}
	return
}
