// Command trace replays the paper's §3 worked example (or a random
// scenario) through Algorithm 2 and prints the node states round by
// round, making the C/R wave of the protocol visible:
//
//	$ go run ./cmd/trace
//	stable:   0:M 1:M 2:M̄ 3:M 4:M̄ 5:M̄
//	change:   edge-insert{0,1}
//	round  1: 0:M 1:C 2:M̄ 3:M 4:M̄ 5:M̄
//	round  2: 0:M 1:C 2:C 3:M 4:M̄ 5:C
//	...
//
// With -replay, the command instead streams a recorded dynmis/trace
// JSONL file (made with `bench -record` or `churnsim -record`) through
// the protocol engine via Maintainer.Drive and prints the membership
// event feed — which nodes joined, left or flipped, change by change.
//
// Usage:
//
//	trace [-scenario path|star|random] [-n 8] [-seed 1]
//	trace -replay trace.jsonl [-seed 1] [-events 20]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"dynmis"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/internal/protocol"
	"dynmis/internal/viz"
	"dynmis/trace"
	"dynmis/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "paper", "paper | path | star | random")
		n        = flag.Int("n", 8, "size for path/star/random scenarios")
		seed     = flag.Uint64("seed", 1, "random seed")
		dot      = flag.String("dot", "", "write a Graphviz DOT rendering of the final MIS to this file")
		replayF  = flag.String("replay", "", "stream a recorded trace file through the engine and print its event feed")
		events   = flag.Int("events", 20, "with -replay: print only the first N membership events (0 = all)")
	)
	flag.Parse()

	if *replayF != "" {
		if err := replayTrace(*replayF, *seed, *events); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	eng := protocol.New(*seed)
	var change graph.Change

	switch *scenario {
	case "paper":
		// The §3 path example: x < v* < u1 < w1 < w2 < u2; inserting
		// the edge {x, v*} evicts v* and ripples through the path.
		ord := eng.Order()
		for i, v := range []graph.NodeID{0, 1, 2, 3, 4, 5} {
			ord.Set(v, order.Priority(i+1))
		}
		mustAll(eng,
			graph.NodeChange(graph.NodeInsert, 0),
			graph.NodeChange(graph.NodeInsert, 1),
			graph.NodeChange(graph.NodeInsert, 2, 1),
			graph.NodeChange(graph.NodeInsert, 3, 2),
			graph.NodeChange(graph.NodeInsert, 4, 3),
			graph.NodeChange(graph.NodeInsert, 5, 1, 4),
		)
		change = graph.EdgeChange(graph.EdgeInsert, 0, 1)
	case "path":
		mustAll(eng, workload.Path(*n)...)
		change = graph.NodeChange(graph.NodeDeleteGraceful, 0)
	case "star":
		mustAll(eng, workload.Star(*n)...)
		change = graph.NodeChange(graph.NodeDeleteAbrupt, 0)
	case "random":
		rng := rand.New(rand.NewPCG(*seed, 17))
		mustAll(eng, workload.GNP(rng, *n, 3/float64(*n))...)
		es := eng.Graph().Edges()
		if len(es) == 0 {
			fmt.Fprintln(os.Stderr, "random graph has no edges; raise -n")
			os.Exit(1)
		}
		e := es[rng.IntN(len(es))]
		change = graph.EdgeChange(graph.EdgeDeleteGraceful, e[0], e[1])
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	// Print the stable configuration, then trace the recovery.
	fmt.Printf("graph:    %v, MIS=%v\n", eng.Graph(), eng.MIS())
	stable := protocol.TraceRound{States: map[graph.NodeID]protocol.State{}}
	for _, v := range eng.Graph().Nodes() {
		st := protocol.StateOut
		if eng.InMIS(v) {
			st = protocol.StateIn
		}
		stable.States[v] = st
	}
	fmt.Printf("stable:   %s\n", stable.StatesLine())
	fmt.Printf("change:   %s\n", change)

	first := -1
	eng.SetTracer(func(tr protocol.TraceRound) {
		if first < 0 {
			first = tr.Round
		}
		fmt.Printf("round %2d: %s\n", tr.Round-first+1, tr.StatesLine())
	})
	rep, err := eng.Apply(change)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	eng.SetTracer(nil)

	fmt.Printf("\nrecovered: MIS=%v\n", eng.MIS())
	fmt.Printf("cost: adjustments=%d |S|=%d rounds=%d broadcasts=%d bits=%d\n",
		rep.Adjustments, rep.SSize, rep.Rounds, rep.Broadcasts, rep.Bits)
	if err := eng.Check(); err != nil {
		fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: %v\n", err)
		os.Exit(1)
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		viz.MISDot(f, eng.Graph(), eng.State(), fmt.Sprintf("after %s", change))
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *dot)
	}
}

// replayTrace streams a recorded change trace through a protocol-backed
// maintainer and prints the membership event feed it produces — the
// push-side view of the same recovery the round tracer shows.
func replayTrace(path string, seed uint64, maxEvents int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	m := dynmis.MustNew(dynmis.WithSeed(seed))
	printed := 0
	m.Subscribe(func(ev dynmis.Event) {
		if maxEvents > 0 && printed == maxEvents {
			fmt.Println("... (further events elided; raise -events)")
		}
		printed++
		if maxEvents > 0 && printed > maxEvents {
			return
		}
		fmt.Printf("event %s\n", ev)
	})

	r := trace.NewReader(f)
	sum, err := m.Drive(context.Background(), r.All())
	if err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("\nreplayed %d changes: %d membership events, final |MIS|=%d, %v\n",
		sum.Changes, printed, len(m.MIS()), sum)
	if err := m.Verify(); err != nil {
		return fmt.Errorf("VERIFICATION FAILED: %w", err)
	}
	fmt.Println("invariants verified")
	return nil
}

func mustAll(eng *protocol.Engine, cs ...graph.Change) {
	if _, err := eng.ApplyAll(cs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
