// Command experiments regenerates the reproduction's experiment tables —
// one experiment per quantitative claim of the paper (see DESIGN.md §3 and
// EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run E1,E7] [-seed 42] [-quick] [-list]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dynmis/internal/expt"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		seed  = flag.Uint64("seed", 42, "random seed")
		quick = flag.Bool("quick", false, "reduced trial counts")
		list  = flag.Bool("list", false, "list experiments and exit")
		out   = flag.String("out", "", "also write results to this file")
	)
	flag.Parse()

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		sink = io.MultiWriter(os.Stdout, f)
	}

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Name, e.Claim)
		}
		return
	}

	var selected []expt.Experiment
	if *run == "" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := expt.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := expt.Config{Seed: *seed, Quick: *quick}
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		res.Render(sink)
		fmt.Fprintf(sink, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
