// Command validate is the paper-claims validation harness: it drives the
// workload scenarios across all eight engines with complexity
// instrumentation enabled (dynmis.WithInstrumentation) and emits
// docs/VALIDATION.md — tables of measured amortized adjustments,
// cascade lengths, rounds, broadcasts and message counts per update,
// set against the bounds the source paper proves (E[adjustments] ≤ 1
// per change, Theorem 1; O(1) rounds and broadcasts for Algorithm 2,
// Theorem 7), plus a head-to-head comparison against the competitor
// dynamic-MIS engines (Gupta–Khan, AOSS) and an MIS-quality section
// that measures every engine's set size against a greedy yardstick and
// the brute-force optimum on small instances. Every engine run is
// verified against the sequential greedy oracle before its numbers are
// reported — the competitors through their band-certificate order — so
// the tables can only ever describe correct executions.
//
// Usage:
//
//	validate [-sizes 100,200,400] [-steps 2000] [-seed 42] [-shards 1]
//	         [-scenarios churn,sliding-window,single-node-churn,adversarial-deletion]
//	         [-out docs/VALIDATION.md] [-quick] [-check] [-timing]
//	         [-adaptive-smoke]
//
// Besides the oblivious scenario tables the document carries an
// adaptive-adversary matrix: every engine driven engine-in-the-loop
// (Maintainer.DriveInteractive) by the feed-observing policies of
// workload.AdaptiveSource, against an MIS-blind control of the same
// operation shape. -adaptive-smoke runs only that matrix at tiny sizes
// and exits without writing — the CI gate (make validate-adaptive-smoke).
//
// The emitted document starts with a machine-readable schema header;
// -check verifies that an existing document's header matches this
// binary's schema version and exits non-zero on drift, which is the CI
// docs-freshness gate (make validate-smoke). Runs are deterministic for
// a fixed flag set — the workloads come from the canonical seeded rng,
// every engine is deterministic for a fixed seed, and the sharded
// engine defaults to one shard here so its transient-flip counts do not
// depend on goroutine interleaving — so regenerating with unchanged
// flags reproduces the committed file byte for byte. The only
// machine-dependent quantities, wall-clock throughput and allocation
// volume in the head-to-head table, are gated behind -timing and render
// as "·" in the committed document.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"time"

	"dynmis"
	"dynmis/internal/core"
	"dynmis/internal/graph"
	"dynmis/internal/order"
	"dynmis/metrics"
	"dynmis/workload"
)

// schemaVersion names the layout of the emitted document. Bump it when
// the table columns or the header structure change, and regenerate
// docs/VALIDATION.md in the same commit: cmd/validate -check fails CI
// whenever the committed header and this constant drift apart. v3 added
// the deterministic B/node memory column to the head-to-head table; v4
// added the adaptive-adversary matrix (feed-observing policies driven
// engine-in-the-loop against every engine, vs an oblivious control).
const schemaVersion = "dynmis-validate/v4"

// schemaMarker is the exact prefix of the machine-readable header line.
const schemaMarker = "<!-- schema: "

// engineSpec is one engine column of the validation matrix.
type engineSpec struct {
	engine dynmis.Engine
	name   string
	opts   func(shards int) []dynmis.Option
}

func engines() []engineSpec {
	specs := make([]engineSpec, 0, len(dynmis.Engines()))
	for _, e := range dynmis.Engines() {
		e := e
		opts := func(int) []dynmis.Option {
			return []dynmis.Option{dynmis.WithEngine(e)}
		}
		if e == dynmis.EngineSharded {
			opts = func(shards int) []dynmis.Option {
				return []dynmis.Option{dynmis.WithEngine(e), dynmis.WithShards(shards)}
			}
		}
		specs = append(specs, engineSpec{engine: e, name: e.String(), opts: opts})
	}
	return specs
}

// row is one (scenario, n, engine) measurement.
type row struct {
	engine  string
	n       int
	updates int
	meanAdj float64
	maxAdj  int
	work    float64 // adjacency entries examined per update (single-machine engines)
	quality float64 // final |MIS| / greedy-yardstick size, averaged over runs
	per     metrics.PerUpdate
}

// flatness pairs an engine's smallest-n and largest-n measurements of
// one scenario for the conformance summary's growth ratio.
type flatness struct {
	scenario, engine string
	first, last      row
}

func main() {
	var (
		sizesCSV = flag.String("sizes", "100,200,400", "comma-separated warm-up sizes n (scenarios may clamp)")
		steps    = flag.Int("steps", 2000, "measured update steps per engine run")
		scenCSV  = flag.String("scenarios", "churn,sliding-window,single-node-churn,adversarial-deletion", "comma-separated scenario names")
		seed     = flag.Uint64("seed", 42, "base random seed (engines and workload generation)")
		runs     = flag.Int("runs", 3, "independent seeded runs aggregated per table row (seeds seed..seed+runs-1)")
		shards   = flag.Int("shards", 1, "shard count for the sharded engine (1 keeps regeneration byte-stable)")
		out      = flag.String("out", "docs/VALIDATION.md", "output markdown path (and the file -check inspects)")
		quick    = flag.Bool("quick", false, "smoke sizes (sizes=60, steps=400) for CI")
		check    = flag.Bool("check", false, "verify -out's schema header matches this binary and exit (no measurement)")
		timing   = flag.Bool("timing", false, "fill the machine-dependent head-to-head columns (upd/s, B/upd); off for the committed byte-stable document")
		adaptive = flag.Bool("adaptive-smoke", false, "run only the adaptive-adversary matrix at smoke sizes, oracle-verified, and exit without writing (the CI gate)")
	)
	flag.Parse()
	if *check {
		if err := checkSchema(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: schema header matches %s\n", *out, schemaVersion)
		return
	}
	if *adaptive {
		runAdaptiveSmoke(*seed, *shards)
		return
	}
	if *quick {
		*sizesCSV, *steps = "60", 400
	}

	sizes, err := parseSizes(*sizesCSV)
	if err != nil {
		fatal(err)
	}
	var scenarios []workload.Scenario
	for _, name := range strings.Split(*scenCSV, ",") {
		sc, ok := workload.ScenarioByName(strings.TrimSpace(name))
		if !ok {
			fatal(fmt.Errorf("unknown scenario %q", name))
		}
		scenarios = append(scenarios, sc)
	}

	var doc strings.Builder
	writeHeader(&doc, *seed, *steps, *runs, sizes, *shards)

	var flat []flatness

	for _, sc := range scenarios {
		fmt.Printf("== %s\n", sc.Name)
		fmt.Fprintf(&doc, "## Scenario: %s\n\n%s.\n\n", sc.Name, sc.Description)
		doc.WriteString(tableHeader)

		// Scenarios with a warm-up cap (adversarial-deletion) clamp
		// large sizes to the same n; measuring the same point twice
		// would just duplicate rows.
		effective := dedupeClamped(sc, sizes)
		byEngine := make(map[string][]row)
		for _, n := range effective {
			for _, es := range engines() {
				r := measure(sc, n, *steps, *seed, *runs, es, *shards)
				byEngine[es.name] = append(byEngine[es.name], r)
				fmt.Printf("   %-14s n=%-5d adj/upd=%.3f max=%d\n", es.name, r.n, r.meanAdj, r.maxAdj)
			}
		}
		for _, es := range engines() {
			for _, r := range byEngine[es.name] {
				writeRow(&doc, r)
			}
			rows := byEngine[es.name]
			if len(rows) > 1 {
				flat = append(flat, flatness{sc.Name, es.name, rows[0], rows[len(rows)-1]})
			}
		}
		doc.WriteString("\n")
	}

	writeConformance(&doc, flat)
	writeHeadToHead(&doc, scenarios[0], sizes[len(sizes)-1], *steps, *seed, *shards, *timing)
	writeAdaptive(&doc, sizes[len(sizes)-1], *steps, *seed, *runs, *shards)
	writeQuality(&doc, *seed)
	writeReadingGuide(&doc)

	if err := os.WriteFile(*out, []byte(doc.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// measure aggregates one table row: `runs` independent seeded runs of
// one engine on one scenario at one size. Each run instantiates the
// workload and the engine at its own seed (seed+i), drives an untimed
// warm-up and then the instrumented measurement stream change by change
// (the paper's bounds are per update), and is verified against the
// greedy oracle before its counters are admitted.
//
// Aggregating across seeds matters for the adversarial scenarios: their
// per-update cost is a rare lottery win (probability ~1/n) paying ~n
// adjustments, so a single seed's rate has enormous variance — one
// unlucky leaf-priority minimum reads as a flat zero. Summing a few
// independent orders π is the estimator the "in expectation over π"
// theorems actually talk about.
func measure(sc workload.Scenario, n, steps int, baseSeed uint64, runs int, es engineSpec, shards int) row {
	if runs < 1 {
		runs = 1
	}
	r := row{engine: es.name}
	var agg metrics.Counters
	var totalWork int
	for i := 0; i < runs; i++ {
		seed := baseSeed + uint64(i)
		inst := sc.Instantiate(seed, n, steps)
		r.n = inst.Nodes
		opts := append(es.opts(shards), dynmis.WithSeed(seed), dynmis.WithInstrumentation())
		m, err := dynmis.New(opts...)
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		m.Grow(inst.Nodes)
		if _, err := m.Drive(ctx, slices.Values(inst.Build)); err != nil {
			fatal(fmt.Errorf("%s warm-up: %w", es.name, err))
		}
		// Materialize the measurement stream so the final graph (for the
		// MIS-quality yardstick) can be rebuilt from the change history.
		churn := slices.Collect(inst.Source())
		sum, err := m.Drive(ctx, slices.Values(churn))
		if err != nil {
			fatal(fmt.Errorf("%s drive: %w", es.name, err))
		}
		if err := m.Verify(); err != nil {
			fatal(fmt.Errorf("%s/%s n=%d seed=%d failed oracle verification: %w", sc.Name, es.name, inst.Nodes, seed, err))
		}
		if sum.Metrics == nil {
			fatal(fmt.Errorf("%s: Drive returned no metrics despite WithInstrumentation", es.name))
		}
		agg.Add(*sum.Metrics)
		totalWork += sum.Total.Work
		r.updates += sum.Changes
		r.maxAdj = max(r.maxAdj, sum.Max.Adjustments)
		final := workload.BuildGraph(slices.Concat(inst.Build, churn))
		r.quality += misQuality(len(m.MIS()), final, seed) / float64(runs)
	}
	if agg.Updates > 0 {
		r.meanAdj = float64(agg.Adjustments) / float64(agg.Updates)
		r.work = float64(totalWork) / float64(agg.Updates)
	}
	r.per = agg.PerUpdate()
	return r
}

// measureAdaptive aggregates one adaptive-matrix row: `runs` seeded
// engine-in-the-loop runs of one policy against one engine. Each run
// warms the engine up on the scenario's Build phase, hands the
// adversary the warmed-up graph and the engine's actual MIS, and drives
// it through DriveInteractive — the adversary sees this engine's
// membership feed, so unlike everywhere else in this harness, different
// engines legitimately receive different change streams here. Every run
// is verified against the greedy oracle before its counters are
// admitted.
func measureAdaptive(sc workload.Scenario, n, steps int, baseSeed uint64, runs int, es engineSpec, shards int) row {
	if runs < 1 {
		runs = 1
	}
	r := row{engine: es.name}
	var agg metrics.Counters
	for i := 0; i < runs; i++ {
		seed := baseSeed + uint64(i)
		n2 := sc.ClampNodes(n)
		r.n = n2
		rng := workload.Rand(seed)
		build := sc.Build(rng, n2)
		opts := append(es.opts(shards), dynmis.WithSeed(seed), dynmis.WithInstrumentation())
		m, err := dynmis.New(opts...)
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		m.Grow(n2)
		if _, err := m.Drive(ctx, slices.Values(build)); err != nil {
			fatal(fmt.Errorf("%s/%s warm-up: %w", sc.Name, es.name, err))
		}
		src := sc.NewAdaptive(rng, workload.BuildGraph(build), m.MIS(), steps)
		sum, err := m.DriveInteractive(ctx, src)
		if err != nil {
			fatal(fmt.Errorf("%s/%s drive: %w", sc.Name, es.name, err))
		}
		if err := m.Verify(); err != nil {
			fatal(fmt.Errorf("%s/%s n=%d seed=%d failed oracle verification: %w", sc.Name, es.name, n2, seed, err))
		}
		if sum.Metrics == nil {
			fatal(fmt.Errorf("%s: DriveInteractive returned no metrics despite WithInstrumentation", es.name))
		}
		agg.Add(*sum.Metrics)
		r.updates += sum.Changes
		r.maxAdj = max(r.maxAdj, sum.Max.Adjustments)
	}
	if agg.Updates > 0 {
		r.meanAdj = float64(agg.Adjustments) / float64(agg.Updates)
	}
	r.per = agg.PerUpdate()
	return r
}

// writeAdaptive renders the adaptive-adversary matrix: every engine
// driven by every adaptive policy, with the engine's own oblivious
// control and its same-run single-node-churn rate as the yardsticks.
func writeAdaptive(doc *strings.Builder, n, steps int, seed uint64, runs, shards int) {
	snc, ok := workload.ScenarioByName("single-node-churn")
	if !ok {
		fatal(fmt.Errorf("single-node-churn scenario missing"))
	}
	fmt.Fprintf(doc, `## Adaptive adversaries: engine-in-the-loop vs the oblivious assumption

Theorem 1's O(1) expected adjustments is proved against an *oblivious*
adversary (§1.1): the change sequence is fixed before the random order π
is drawn. This matrix drops that assumption. Each policy
(workload.AdaptiveSource) watches the engine's own membership feed
through Maintainer.DriveInteractive and picks every next change as a
function of the current MIS — deleting a uniform member (adaptive-mis),
the maximum-degree member (adaptive-hub), or farming Gupta–Khan's
deterministic evict-larger-ID rule with fattened hubs (adaptive-gk) —
while adaptive-oblivious is the MIS-blind control with the same
operation shape. Warm-up n=%d, %d adaptive steps per run, %d seeded
runs per row; every run is oracle-verified before its numbers are
admitted.

"×control" is the engine's adj/upd over its own adaptive-oblivious
rate; "×snc" is over the same engine's single-node-churn rate measured
in this same run — the committed worst-case yardstick of the scenario
tables above. Targeting MIS members costs more than blind churn on
*every* engine for a structural reason (each deleted member was a node
that joined and must be replaced, and its replacements' insertions
cascade), so the honest reading is the contrast between the columns:
the paper's engines redraw a fresh hidden priority on every
re-insertion, so no feed-observing strategy can predict the next
conflict's winner and their adaptive-gk rate stays at their control
rate — while Gupta–Khan's eviction rule is deterministic and fully
visible in its output, and adaptive-gk degrades it measurably. The
competitor's O(Δ)-amortized bound is honest about exactly this.

| engine | policy | updates | adj/upd | max adj | ×control | ×snc |
|---|---|---:|---:|---:|---:|---:|
`, snc.ClampNodes(n), steps, runs)
	fmt.Println("== adaptive adversaries")
	for _, es := range engines() {
		base := measure(snc, n, steps, seed, runs, es, shards)
		var control row
		for i, sc := range workload.AdaptiveScenarios() {
			r := measureAdaptive(sc, n, steps, seed, runs, es, shards)
			if i == 0 {
				control = r
			}
			ratio := func(d float64) string {
				if d == 0 {
					return "·"
				}
				return fmt.Sprintf("%.2f", r.meanAdj/d)
			}
			fmt.Fprintf(doc, "| %s | %s | %d | %.3f | %d | %s | %s |\n",
				es.name, sc.Name, r.updates, r.meanAdj, r.maxAdj,
				ratio(control.meanAdj), ratio(base.meanAdj))
			fmt.Printf("   %-14s %-18s adj/upd=%.3f max=%d\n", es.name, sc.Name, r.meanAdj, r.maxAdj)
		}
	}
	doc.WriteString("\n")
}

// runAdaptiveSmoke is the -adaptive-smoke mode: the full engine ×
// policy matrix at tiny sizes, every run oracle-verified
// (measureAdaptive exits nonzero on any failure), nothing written. It
// is the CI gate make validate-adaptive-smoke invokes.
func runAdaptiveSmoke(seed uint64, shards int) {
	const n, steps = 60, 300
	fmt.Printf("== adaptive smoke (n=%d, %d steps)\n", n, steps)
	for _, es := range engines() {
		for _, sc := range workload.AdaptiveScenarios() {
			r := measureAdaptive(sc, n, steps, seed, 1, es, shards)
			fmt.Printf("   %-14s %-18s adj/upd=%.3f max=%d verified\n", es.name, sc.Name, r.meanAdj, r.maxAdj)
		}
	}
	fmt.Println("adaptive smoke passed: every engine, every policy, oracle-verified")
}

// misQuality is the quality yardstick: the engine's final MIS size over
// the size of a sequential greedy MIS on the same final graph under a
// fresh random order (seeded, so regeneration is deterministic). Values
// near 1.0 mean the engine's set is as large as a typical random-greedy
// MIS; the paper's engines sit at exactly the yardstick's distribution,
// the competitors may differ (AOSS's low-degree preference tends to
// land above 1).
func misQuality(misSize int, g *graph.Graph, seed uint64) float64 {
	y := greedySize(g, seed)
	if y == 0 {
		return 1
	}
	return float64(misSize) / float64(y)
}

// greedySize is the size of the greedy MIS on g under a fresh order.
func greedySize(g *graph.Graph, seed uint64) int {
	state := core.GreedyMIS(g, order.New(seed^0x9e3779b97f4a7c15))
	size := 0
	for _, m := range state {
		if m == core.In {
			size++
		}
	}
	return size
}

const tableHeader = "| engine | n | updates | adj/upd | max adj | \\|S\\|/upd | flips/upd | casc-steps/upd | touched/upd | work/upd | rounds/upd | bcasts/upd | msgs/upd | bits/upd | \\|MIS\\|/greedy |\n" +
	"|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n"

// writeRow renders one measurement. Quantities an engine does not model
// at all (the template has no network, the message-passing engines no
// cascade scratch, the distributed engines no update-time work) render
// as "·" rather than a misleading 0.
func writeRow(doc *strings.Builder, r row) {
	dot := func(v float64) string {
		if v == 0 {
			return "·"
		}
		return fmt.Sprintf("%.3f", v)
	}
	fmt.Fprintf(doc, "| %s | %d | %d | %.3f | %d | %.3f | %.3f | %s | %s | %s | %s | %s | %s | %s | %.3f |\n",
		r.engine, r.n, r.updates, r.meanAdj, r.maxAdj, r.per.Influence, r.per.Flips,
		dot(r.per.CascadeSteps), dot(r.per.TouchedSlots), dot(r.work), dot(r.per.Rounds),
		dot(r.per.Broadcasts), dot(r.per.MessagesSent), dot(r.per.Bits), r.quality)
}

func writeHeader(doc *strings.Builder, seed uint64, steps, runs int, sizes []int, shards int) {
	strs := make([]string, len(sizes))
	for i, n := range sizes {
		strs[i] = strconv.Itoa(n)
	}
	fmt.Fprintf(doc, `# VALIDATION — measured complexity vs. the paper's bounds

%s%s -->
<!-- Generated by cmd/validate. Regenerate with 'make validate'; CI verifies this header with 'go run ./cmd/validate -check'. -->

This document is the empirical check that the reproduction actually
exhibits the quantitative guarantees of *Optimal Dynamic Distributed
MIS* (Censor-Hillel, Haramaty, Karnin; PODC 2016). Every table below is
measured by the complexity-instrumentation subsystem (dynmis/metrics,
attached via the core.Instrument capability) while driving seeded
workload scenarios through all eight engines — the paper's six plus the
competitor dynamic-MIS algorithms (gupta-khan, arXiv:1804.01823; aoss,
arXiv:1806.10051) behind the same surface; every run is verified
against the sequential greedy oracle before its numbers are admitted
(the competitors through their two-band certificate order, under which
greedy reproduces their MIS exactly).

Parameters: base seed %d, %d measured updates per run, %d independent
seeded runs aggregated per row (the expectation in the theorems is over
the random order π, so each row sums a few independent orders), warm-up
sizes n ∈ {%s}, sharded engine at %d shard(s). All columns except
"updates", "max adj" and "n" are amortized per update. Regenerating
with the same parameters reproduces this file byte for byte.

The bounds under test, all *in expectation over the random order π, per
topology change*:

- **Adjustments ≤ 1** (Theorem 1): "adj/upd" must stay bounded by a
  small constant — and stay *flat as n grows* — on every engine;
  "max adj" may grow with n (a low-probability hub flip demotes a whole
  neighborhood), which is exactly the amortized-vs-worst-case contrast
  the theorem describes.
- **O(1) rounds and O(1) broadcasts** of O(log n) bits (Theorem 7,
  Algorithm 2 = the protocol engine): "rounds/upd" and "bcasts/upd"
  must stay bounded and flat for the protocol engine. The direct
  engines may spend up to |S|² broadcasts (§4) — they are the paper's
  motivation for Algorithm 2, and the tables let you watch the gap.
- **O(touched) accounting**: "touched/upd" is the number of arena slots
  the template/sharded cost accounting examined; bounded and flat means
  per-update work is independent of n.
- **O(Δ) expected update time, sequential** (§6, the sequential engine)
  and **O(Δ) amortized adjustments** (Gupta–Khan, Theorem 1 of
  arXiv:1804.01823): "work/upd" counts adjacency entries examined per
  update by the single-machine engines; on bounded-average-degree churn
  it must stay a small constant.

`, schemaMarker, schemaVersion, seed, steps, runs, strings.Join(strs, ", "), shards)
}

// writeConformance renders the flatness summary: for every
// (scenario, engine) measured at more than one size, the amortized
// adjustment rate at the smallest and largest n and its growth ratio.
func writeConformance(doc *strings.Builder, flat []flatness) {
	if len(flat) == 0 {
		return
	}
	doc.WriteString(`## Conformance summary: amortized adjustments stay flat

O(1) amortized means the per-update adjustment rate must not grow with
the graph: the "growth" column is adj/upd at the largest measured n
divided by adj/upd at the smallest. Values near 1.0 (or below) are the
paper's prediction; a rate growing with n would falsify the
reproduction.

| scenario | engine | adj/upd @ n=min | adj/upd @ n=max | growth |
|---|---|---:|---:|---:|
`)
	for _, f := range flat {
		growth := "·"
		if f.first.meanAdj > 0 {
			growth = fmt.Sprintf("%.2f", f.last.meanAdj/f.first.meanAdj)
		}
		fmt.Fprintf(doc, "| %s | %s | %.3f (n=%d) | %.3f (n=%d) | %s |\n",
			f.scenario, f.engine, f.first.meanAdj, f.first.n, f.last.meanAdj, f.last.n, growth)
	}
	doc.WriteString("\n")
}

// writeHeadToHead renders the competitor comparison: one run per engine
// on the same scenario, size and seed, reporting throughput-relevant
// amortized costs side by side. The wall-clock and allocation columns
// are machine-dependent and therefore only filled under -timing; the
// committed document keeps them as "·" so regeneration stays
// byte-stable.
func writeHeadToHead(doc *strings.Builder, sc workload.Scenario, n, steps int, seed uint64, shards int, timing bool) {
	fmt.Fprintf(doc, `## Head-to-head: the paper's engines vs. the competitors

One run per engine on the %q scenario at n=%d, %d updates, seed %d —
identical change stream for every engine. "adj/upd" is the measure the
paper optimizes (E ≤ 1, independent of Δ); Gupta–Khan guarantees only
O(Δ) amortized, and AOSS trades adjustments for set size (see the
quality section). "B/node" is the engine's retained memory per live
node from its deterministic capacity-based account (the arena lanes,
the NodeID index, the shared spill pool and the engine's auxiliary
state) — computed from counts, not runtime introspection, so it is
byte-stable and committed; the message-passing engines keep per-node
simulation state outside the arena account and render "·". "upd/s" and
"B/upd" (bytes allocated per update) are filled by running
cmd/validate -timing locally; they are machine dependent and not
committed.

| engine | updates | adj/upd | flips/upd | work/upd | rounds/upd | B/node | upd/s | B/upd |
|---|---:|---:|---:|---:|---:|---:|---:|---:|
`, sc.Name, sc.ClampNodes(n), steps, seed)
	fmt.Printf("== head-to-head (%s, n=%d)\n", sc.Name, sc.ClampNodes(n))
	for _, es := range engines() {
		inst := sc.Instantiate(seed, n, steps)
		opts := append(es.opts(shards), dynmis.WithSeed(seed), dynmis.WithInstrumentation())
		m, err := dynmis.New(opts...)
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		m.Grow(inst.Nodes)
		if _, err := m.Drive(ctx, slices.Values(inst.Build)); err != nil {
			fatal(fmt.Errorf("%s warm-up: %w", es.name, err))
		}
		churn := slices.Collect(inst.Source())
		var elapsed time.Duration
		var allocated uint64
		var sum dynmis.Summary
		if timing {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			sum, err = m.Drive(ctx, slices.Values(churn))
			elapsed = time.Since(start)
			runtime.ReadMemStats(&after)
			allocated = after.TotalAlloc - before.TotalAlloc
		} else {
			sum, err = m.Drive(ctx, slices.Values(churn))
		}
		if err != nil {
			fatal(fmt.Errorf("%s head-to-head drive: %w", es.name, err))
		}
		if err := m.Verify(); err != nil {
			fatal(fmt.Errorf("head-to-head %s failed oracle verification: %w", es.name, err))
		}
		per := func(v int) string {
			if v == 0 {
				return "·"
			}
			return fmt.Sprintf("%.3f", float64(v)/float64(sum.Changes))
		}
		updPerSec, bytesPerUpd := "·", "·"
		if timing && elapsed > 0 {
			updPerSec = fmt.Sprintf("%.0f", float64(sum.Changes)/elapsed.Seconds())
			bytesPerUpd = fmt.Sprintf("%.0f", float64(allocated)/float64(sum.Changes))
		}
		bytesPerNode := "·"
		if prof, ok := m.MemoryProfile(); ok {
			bytesPerNode = fmt.Sprintf("%.1f", prof.BytesPerNode)
		}
		fmt.Fprintf(doc, "| %s | %d | %.3f | %s | %s | %s | %s | %s | %s |\n",
			es.name, sum.Changes, sum.MeanAdjustments(), per(sum.Total.Flips),
			per(sum.Total.Work), per(sum.Total.Rounds), bytesPerNode, updPerSec, bytesPerUpd)
		fmt.Printf("   %-14s adj/upd=%.3f B/node=%s upd/s=%s\n", es.name, sum.MeanAdjustments(), bytesPerNode, updPerSec)
	}
	doc.WriteString("\n")
}

// qualityInstance is one small benchmark graph for the brute-force
// quality table: a deterministic build followed by edge churn, small
// enough (n ≤ 20) that the maximum independent set is computable
// exactly.
type qualityInstance struct {
	name  string
	build func(rng *rand.Rand) []dynmis.Change
}

// writeQuality renders the MIS-quality section: every engine's final
// set size on small churned instances against the greedy yardstick and
// the brute-force optimum.
func writeQuality(doc *strings.Builder, seed uint64) {
	instances := []qualityInstance{
		{"gnp-16", func(rng *rand.Rand) []dynmis.Change { return workload.GNP(rng, 16, 0.25) }},
		{"cycle-15", func(*rand.Rand) []dynmis.Change { return workload.Cycle(15) }},
		{"gnp-18-dense", func(rng *rand.Rand) []dynmis.Change { return workload.GNP(rng, 18, 0.4) }},
	}
	doc.WriteString(`## MIS quality: set size vs. greedy and the brute-force optimum

Maximality alone says nothing about set size — any two valid MIS on the
same graph can differ by up to a Δ factor. This table drives every
engine through the same small instances (build + 120 edge-churn steps)
and compares the final set size against a fresh random-greedy MIS on
the final graph and against the exact maximum independent set
(brute force, n ≤ 20). The paper's engines land on the greedy
distribution by construction; AOSS's low-degree preference typically
lands at or above it.

| instance | n | m | optimal | greedy | engine | \|MIS\| | \|MIS\|/opt |
|---|---:|---:|---:|---:|---|---:|---:|
`)
	fmt.Println("== quality (brute-force instances)")
	for _, qi := range instances {
		rng := rand.New(rand.NewPCG(seed, 97))
		build := qi.build(rng)
		churn := workload.EdgeChurn(rng, workload.BuildGraph(build), 120)
		stream := slices.Concat(build, churn)
		final := workload.BuildGraph(stream)
		opt := optimalMIS(final)
		greedy := greedySize(final, seed)
		for _, es := range engines() {
			m, err := dynmis.New(append(es.opts(1), dynmis.WithSeed(seed))...)
			if err != nil {
				fatal(err)
			}
			if _, err := m.Drive(context.Background(), slices.Values(stream)); err != nil {
				fatal(fmt.Errorf("quality %s/%s: %w", qi.name, es.name, err))
			}
			if err := m.Verify(); err != nil {
				fatal(fmt.Errorf("quality %s/%s failed oracle verification: %w", qi.name, es.name, err))
			}
			size := len(m.MIS())
			fmt.Fprintf(doc, "| %s | %d | %d | %d | %d | %s | %d | %.3f |\n",
				qi.name, final.NodeCount(), final.EdgeCount(), opt, greedy,
				es.name, size, float64(size)/float64(opt))
		}
		fmt.Printf("   %-14s optimal=%d greedy=%d\n", qi.name, opt, greedy)
	}
	doc.WriteString("\n")
}

// optimalMIS computes the exact maximum-independent-set size by
// enumerating all subsets; callers keep n ≤ 20 (≤ ~1M subsets).
func optimalMIS(g *graph.Graph) int {
	nodes := g.Nodes()
	n := len(nodes)
	if n > 20 {
		fatal(fmt.Errorf("optimalMIS: %d nodes exceeds the brute-force bound", n))
	}
	idx := make(map[graph.NodeID]int, n)
	for i, v := range nodes {
		idx[v] = i
	}
	adj := make([]uint32, n)
	for i, v := range nodes {
		g.EachNeighbor(v, func(u graph.NodeID) {
			adj[i] |= 1 << idx[u]
		})
	}
	best := 0
	for mask := uint32(0); mask < 1<<n; mask++ {
		if bits.OnesCount32(mask) <= best {
			continue
		}
		independent := true
		for m := mask; m != 0; m &= m - 1 {
			if adj[bits.TrailingZeros32(m)]&mask != 0 {
				independent = false
				break
			}
		}
		if independent {
			best = bits.OnesCount32(mask)
		}
	}
	return best
}

func writeReadingGuide(doc *strings.Builder) {
	doc.WriteString(`## Column key

- **adj/upd** — membership adjustments per update (Theorem 1 bounds the
  expectation by 1); **max adj** — largest single-update adjustment
  count observed.
- **|S|/upd, flips/upd** — influence-set size and total state flips per
  update, including transient flips (flips ≥ |S| ≥ adjustments).
- **casc-steps/upd, touched/upd** — template/sharded engines only:
  synchronous cascade steps to quiescence and arena slots examined by
  the O(touched) accounting.
- **rounds/upd, bcasts/upd, msgs/upd, bits/upd** — message-passing
  engines only: synchronous network rounds to quiescence, broadcast
  operations, point-to-point message copies sent, and payload bits.
- **work/upd** — single-machine engines only (sequential, gupta-khan,
  aoss): adjacency entries examined per update, the classic dynamic
  update-time measure.
- **|MIS|/greedy** — the engine's final set size over a fresh
  random-greedy MIS on the same final graph; 1.0 is the random-greedy
  distribution the paper's engines realize, higher is a larger set.
- **B/node** (head-to-head table) — retained bytes per live node from
  the engine's deterministic memory account: arena lanes + NodeID index
  + shared spill pool + engine auxiliary state, all computed from
  capacities and counts so the figure is byte-stable across machines.
- **·** — the engine does not model that quantity (the model-level
  template has no network; the message-passing engines no cascade
  scratch; the asynchronous engine no global rounds; the distributed
  engines no update-time work).

Single-node-churn is the deliberate worst case: its hub re-insertion
occasionally wins the priority lottery against the whole leaf set, so
"max adj" scales with n there while "adj/upd" stays constant — the
sharpest illustration of what "O(1) amortized, in expectation" does and
does not promise.

Its broadcast column grows with n for a model-inherent reason, too:
re-inserting a degree-(n−1) node makes every neighbor announce itself
once, Θ(n) broadcasts charged to a single update. The O(1)-broadcast
theorem is about the *recovery* following a change, not the
neighborhood discovery of a fresh high-degree node — churn and
sliding-window, whose attach degrees are bounded, are the scenarios
that exhibit the bound.
`)
}

// checkSchema is the docs-freshness gate: it fails unless the file's
// schema header names exactly this binary's schemaVersion.
func checkSchema(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("validate -check: %w (run 'make validate' to generate it)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, schemaMarker) {
			continue
		}
		got := strings.TrimSuffix(strings.TrimPrefix(line, schemaMarker), " -->")
		if got != schemaVersion {
			return fmt.Errorf("validate -check: %s has schema %q, this generator emits %q — regenerate with 'make validate'", path, got, schemaVersion)
		}
		return nil
	}
	return fmt.Errorf("validate -check: %s has no %q header — regenerate with 'make validate'", path, schemaMarker)
}

// dedupeClamped maps the requested sizes through the scenario's
// MaxNodes clamp and drops duplicates, preserving order.
func dedupeClamped(sc workload.Scenario, sizes []int) []int {
	var out []int
	for _, n := range sizes {
		c := sc.ClampNodes(n)
		if !slices.Contains(out, c) {
			out = append(out, c)
		}
	}
	return out
}

func parseSizes(csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad -sizes entry %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
