// Command traceimport converts a SNAP-style edge list — the format
// published graph datasets ship in — into a canonical dynmis-trace
// JSONL file that every tool in the repo can replay (`bench -replay`,
// `trace -replay`, `validate`, the server's ingestion endpoint).
//
// The input is `u v` or `u v timestamp` lines with `#`/`%` comments;
// with -window W, a temporal edge list becomes a sliding window: an
// edge expires W time units after insertion and nodes leave when their
// last edge does. The output is deterministic byte for byte for a
// given input and flag set, so imported traces diff cleanly under
// version control.
//
// Usage:
//
//	traceimport -in as-graph.txt -out as.trace.jsonl
//	traceimport -window 3600 -normalize -out contacts.jsonl contacts.txt
//	cat edges.txt | traceimport > out.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynmis/trace/importer"
)

func main() {
	var (
		in        = flag.String("in", "", "input edge list (default stdin)")
		out       = flag.String("out", "", "output trace file (default stdout)")
		window    = flag.Int64("window", 0, "sliding-window width in timestamp units (0 = cumulative import)")
		normalize = flag.Bool("normalize", false, "renumber node IDs densely in first-appearance order")
		selfLoops = flag.String("self-loops", "skip", "self-loop policy: skip | error")
		dups      = flag.String("dups", "skip", "duplicate-edge policy: skip | error")
	)
	flag.Parse()
	// A bare path argument is the input file; silently reading an empty
	// stdin instead would report a convincing-looking zero-change import.
	switch {
	case flag.NArg() == 1 && *in == "":
		*in = flag.Arg(0)
	case flag.NArg() > 0:
		fmt.Fprintf(os.Stderr, "traceimport: unexpected arguments %q (use -in, or a single input path)\n", flag.Args())
		os.Exit(2)
	}
	if err := run(*in, *out, *window, *normalize, *selfLoops, *dups); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(in, out string, window int64, normalize bool, selfLoops, dups string) error {
	opts := importer.Options{Window: window, Normalize: normalize}
	var err error
	if opts.SelfLoops, err = importer.ParsePolicy(selfLoops); err != nil {
		return err
	}
	if opts.Duplicates, err = importer.ParsePolicy(dups); err != nil {
		return err
	}

	var src io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	var dst io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}

	stats, err := importer.Import(dst, src, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"imported %d lines (%d comments): %d changes — %d node inserts, %d edge inserts, %d edges expired, %d nodes expired; dropped %d self-loops, %d duplicates\n",
		stats.Lines, stats.Comments, stats.Changes, stats.Nodes, stats.Edges,
		stats.ExpiredEdges, stats.ExpiredNodes, stats.SelfLoops, stats.Duplicates)
	if c, ok := dst.(io.Closer); ok && out != "" {
		return c.Close()
	}
	return nil
}
