// Command dynmis runs one dynamic-MIS scenario from the command line: it
// builds a topology, streams a random churn Source through the selected
// engine with Maintainer.Drive, and prints the per-change cost summary
// that the paper's complexity measures define (adjustments, rounds,
// broadcasts, bits). All eight engines are available through the facade.
//
// Usage:
//
//	dynmis -engine protocol -topology gnp -n 500 -p 0.02 -steps 1000 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"slices"

	"dynmis"
	"dynmis/internal/stats"
	"dynmis/workload"
)

func main() {
	var (
		engineName = flag.String("engine", "protocol",
			"template | direct | protocol | async | sharded | sequential | gupta-khan | aoss")
		topology = flag.String("topology", "gnp", "gnp | star | grid | path | cycle")
		n        = flag.Int("n", 200, "node count (grid uses the nearest square)")
		p        = flag.Float64("p", 0.05, "edge probability for gnp")
		steps    = flag.Int("steps", 500, "churn steps")
		seed     = flag.Uint64("seed", 1, "random seed")
		verify   = flag.Bool("verify", true, "check invariants after the run")
	)
	flag.Parse()

	engine, err := dynmis.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m, err := dynmis.New(dynmis.WithSeed(*seed), dynmis.WithEngine(engine))
	if err != nil {
		fatal(err)
	}

	rng := workload.Rand(*seed)
	var build []dynmis.Change
	switch *topology {
	case "gnp":
		build = workload.GNP(rng, *n, *p)
	case "star":
		build = workload.Star(*n)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= *n {
			side++
		}
		build = workload.Grid(side, side)
	case "path":
		build = workload.Path(*n)
	case "cycle":
		build = workload.Cycle(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(2)
	}

	ctx := context.Background()
	if _, err := m.Drive(ctx, slices.Values(build)); err != nil {
		fatal(fmt.Errorf("build failed: %w", err))
	}
	fmt.Printf("built %s: n=%d m=%d, |MIS| = %d\n", *topology, m.NodeCount(), m.EdgeCount(), len(m.MIS()))

	// The timed phase: a churn Source streamed through the engine, with
	// per-change reports folded into distributions as they happen.
	churn := workload.ChurnSource(rng, workload.BuildGraph(build), workload.DefaultChurn(*steps))
	var adj, ssize, rounds, bcasts, bits, depth, work stats.Series
	sum, err := m.Drive(ctx, churn,
		dynmis.DriveObserver(func(_ []dynmis.Change, rep dynmis.Report) {
			adj.ObserveInt(rep.Adjustments)
			ssize.ObserveInt(rep.SSize)
			rounds.ObserveInt(rep.Rounds)
			bcasts.ObserveInt(rep.Broadcasts)
			bits.ObserveInt(rep.Bits)
			depth.ObserveInt(rep.CausalDepth)
			work.ObserveInt(rep.Work)
		}))
	if err != nil {
		fatal(err)
	}

	// Single-machine engines (the sequential structure and the
	// competitors) account update-time work, not communication.
	singleMachine := engine == dynmis.EngineSequential || engine.Independent()

	table := stats.NewTable(fmt.Sprintf("per-change cost over %d churn steps (engine=%s)", sum.Changes, engine),
		"metric", "mean", "ci95", "max")
	table.AddRow("adjustments", adj.Mean(), adj.CI95(), int(adj.Max()))
	table.AddRow("|S|", ssize.Mean(), ssize.CI95(), int(ssize.Max()))
	switch {
	case singleMachine:
		table.AddRow("work", work.Mean(), work.CI95(), int(work.Max()))
	case engine == dynmis.EngineAsyncDirect:
		table.AddRow("causal depth", depth.Mean(), depth.CI95(), int(depth.Max()))
	default:
		table.AddRow("rounds", rounds.Mean(), rounds.CI95(), int(rounds.Max()))
	}
	if !singleMachine && engine != dynmis.EngineTemplate && engine != dynmis.EngineSharded {
		table.AddRow("broadcasts", bcasts.Mean(), bcasts.CI95(), int(bcasts.Max()))
		table.AddRow("bits", bits.Mean(), bits.CI95(), int(bits.Max()))
	}
	table.Render(os.Stdout)

	fmt.Printf("\nfinal graph n=%d m=%d, |MIS| = %d\n", m.NodeCount(), m.EdgeCount(), len(m.MIS()))
	fmt.Printf("summary: %v\n", sum)
	if *verify {
		if err := m.Verify(); err != nil {
			fatal(fmt.Errorf("VERIFICATION FAILED: %w", err))
		}
		fmt.Println("invariants verified")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
