// Command dynmis runs one dynamic-MIS scenario from the command line: it
// builds a topology, applies a random churn sequence with the selected
// engine, and prints the per-change cost summary that the paper's
// complexity measures define (adjustments, rounds, broadcasts, bits).
//
// Usage:
//
//	dynmis -engine protocol -topology gnp -n 500 -p 0.02 -steps 1000 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"dynmis/internal/core"
	"dynmis/internal/direct"
	"dynmis/internal/graph"
	"dynmis/internal/protocol"
	"dynmis/internal/stats"
	"dynmis/internal/workload"
)

// engine is the common surface the CLI needs.
type engine interface {
	Apply(graph.Change) (core.Report, error)
	ApplyAll([]graph.Change) (core.Report, error)
	Graph() *graph.Graph
	MIS() []graph.NodeID
	Check() error
}

func main() {
	var (
		engineName = flag.String("engine", "protocol", "template | direct | protocol | async")
		topology   = flag.String("topology", "gnp", "gnp | star | grid | path | cycle")
		n          = flag.Int("n", 200, "node count (grid uses the nearest square)")
		p          = flag.Float64("p", 0.05, "edge probability for gnp")
		steps      = flag.Int("steps", 500, "churn steps")
		seed       = flag.Uint64("seed", 1, "random seed")
		verify     = flag.Bool("verify", true, "check invariants after the run")
	)
	flag.Parse()

	var eng engine
	switch *engineName {
	case "template":
		eng = core.NewTemplate(*seed)
	case "direct":
		eng = direct.New(*seed)
	case "async":
		eng = direct.NewAsync(*seed, nil)
	case "protocol":
		eng = protocol.New(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engineName)
		os.Exit(2)
	}

	rng := rand.New(rand.NewPCG(*seed, 0x5eed))
	var build []graph.Change
	switch *topology {
	case "gnp":
		build = workload.GNP(rng, *n, *p)
	case "star":
		build = workload.Star(*n)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= *n {
			side++
		}
		build = workload.Grid(side, side)
	case "path":
		build = workload.Path(*n)
	case "cycle":
		build = workload.Cycle(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(2)
	}

	if _, err := eng.ApplyAll(build); err != nil {
		fmt.Fprintf(os.Stderr, "build failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("built %s: %v, |MIS| = %d\n", *topology, eng.Graph(), len(eng.MIS()))

	churnOpts := workload.DefaultChurn(*steps)
	if *engineName == "async" {
		// The async engine does not model muting; the default mix never
		// generates it, so nothing to adjust — kept for clarity.
		_ = churnOpts
	}
	churn := workload.RandomChurn(rng, eng.Graph(), churnOpts)

	var adj, ssize, rounds, bcasts, bits, depth stats.Series
	for i, c := range churn {
		rep, err := eng.Apply(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "change %d (%s) failed: %v\n", i, c, err)
			os.Exit(1)
		}
		adj.ObserveInt(rep.Adjustments)
		ssize.ObserveInt(rep.SSize)
		rounds.ObserveInt(rep.Rounds)
		bcasts.ObserveInt(rep.Broadcasts)
		bits.ObserveInt(rep.Bits)
		depth.ObserveInt(rep.CausalDepth)
	}

	table := stats.NewTable(fmt.Sprintf("per-change cost over %d churn steps (engine=%s)", len(churn), *engineName),
		"metric", "mean", "ci95", "max")
	table.AddRow("adjustments", adj.Mean(), adj.CI95(), int(adj.Max()))
	table.AddRow("|S|", ssize.Mean(), ssize.CI95(), int(ssize.Max()))
	if *engineName != "async" {
		table.AddRow("rounds", rounds.Mean(), rounds.CI95(), int(rounds.Max()))
	} else {
		table.AddRow("causal depth", depth.Mean(), depth.CI95(), int(depth.Max()))
	}
	if *engineName != "template" {
		table.AddRow("broadcasts", bcasts.Mean(), bcasts.CI95(), int(bcasts.Max()))
		table.AddRow("bits", bits.Mean(), bits.CI95(), int(bits.Max()))
	}
	table.Render(os.Stdout)

	fmt.Printf("\nfinal graph %v, |MIS| = %d\n", eng.Graph(), len(eng.MIS()))
	if *verify {
		if err := eng.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("invariants verified")
	}
}
