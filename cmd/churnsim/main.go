// Command churnsim simulates a long-lived network under continuous churn
// and reports windowed cost statistics, demonstrating that the per-change
// guarantees hold sustainably (not just amortized): adjustments and
// broadcasts stay O(1) per change over the whole run.
//
// Usage:
//
//	churnsim -n 300 -steps 20000 -window 2000 -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"dynmis/internal/protocol"
	"dynmis/internal/stats"
	"dynmis/internal/workload"
)

func main() {
	var (
		n      = flag.Int("n", 300, "initial node count")
		steps  = flag.Int("steps", 20000, "total churn steps")
		window = flag.Int("window", 2000, "reporting window")
		seed   = flag.Uint64("seed", 3, "random seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewPCG(*seed, 0xc0ffee))
	eng := protocol.New(*seed)
	if _, err := eng.ApplyAll(workload.GNP(rng, *n, 8/float64(*n))); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("initial: %v, |MIS| = %d\n\n", eng.Graph(), len(eng.MIS()))
	fmt.Printf("%10s  %8s  %10s  %10s  %10s  %8s  %8s\n",
		"steps", "nodes", "mean adj", "mean rnds", "mean bcast", "max |S|", "|MIS|")

	done := 0
	for done < *steps {
		batch := min(*window, *steps-done)
		churn := workload.RandomChurn(rng, eng.Graph(), workload.DefaultChurn(batch))
		var adj, rounds, bcasts, ssize stats.Series
		for _, c := range churn {
			rep, err := eng.Apply(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "at step %d: %v\n", done, err)
				os.Exit(1)
			}
			adj.ObserveInt(rep.Adjustments)
			rounds.ObserveInt(rep.Rounds)
			bcasts.ObserveInt(rep.Broadcasts)
			ssize.ObserveInt(rep.SSize)
		}
		done += batch
		fmt.Printf("%10d  %8d  %10.3f  %10.3f  %10.3f  %8d  %8d\n",
			done, eng.Graph().NodeCount(), adj.Mean(), rounds.Mean(), bcasts.Mean(),
			int(ssize.Max()), len(eng.MIS()))
	}

	if err := eng.Check(); err != nil {
		fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\ninvariants verified after", done, "changes")
}
