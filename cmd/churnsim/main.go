// Command churnsim simulates a long-lived network under continuous churn
// and reports windowed cost statistics, demonstrating that the per-change
// guarantees hold sustainably (not just amortized): adjustments and
// broadcasts stay O(1) per change over the whole run. The churn is a
// single streaming Source driven through Maintainer.Drive; -record
// captures everything the engine ingested (warm-up included) as a
// dynmis/trace file, and -replay re-drives a recorded file instead of
// generating churn — same bytes, same structure, on any engine.
//
// Usage:
//
//	churnsim [-engine protocol] [-scenario churn] [-n 300] [-steps 20000]
//	         [-window 2000] [-seed 3] [-record trace.jsonl] [-replay trace.jsonl]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"slices"

	"dynmis"
	"dynmis/internal/stats"
	"dynmis/trace"
	"dynmis/workload"
)

func main() {
	var (
		engineName = flag.String("engine", "protocol",
			"template | direct | protocol | async | sharded | sequential | gupta-khan | aoss")
		scenario = flag.String("scenario", "churn", "workload scenario (see workload.Scenarios)")
		n        = flag.Int("n", 300, "initial node count (scenarios may cap it)")
		steps    = flag.Int("steps", 20000, "total churn steps")
		window   = flag.Int("window", 2000, "reporting window")
		seed     = flag.Uint64("seed", 3, "random seed")
		record   = flag.String("record", "", "record the full ingested stream to this trace file")
		replay   = flag.String("replay", "", "drive a recorded trace instead of generating churn")
	)
	flag.Parse()
	if *record != "" && *replay != "" {
		fatal(fmt.Errorf("-record and -replay are mutually exclusive"))
	}
	if *window < 1 {
		fatal(fmt.Errorf("-window must be at least 1, have %d", *window))
	}

	engine, err := dynmis.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m, err := dynmis.New(dynmis.WithSeed(*seed), dynmis.WithEngine(engine))
	if err != nil {
		fatal(err)
	}

	// The full ingested stream: warm-up then churn when generating, or a
	// recorded trace when replaying.
	var (
		src    dynmis.Source
		reader *trace.Reader
	)
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		reader = trace.NewReader(f)
		src = reader.All()
	} else {
		// The shared scenario construction: warm-up slice plus a lazy
		// drive stream, both from the canonical workload rng.
		sc, ok := workload.ScenarioByName(*scenario)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
			os.Exit(2)
		}
		*n = sc.ClampNodes(*n)
		rng := workload.Rand(*seed)
		build := sc.Build(rng, *n)
		src = concat(slices.Values(build), sc.Stream(rng, workload.BuildGraph(build), *steps))
	}

	var recorder *trace.Writer
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		recorder = trace.NewWriter(f)
		src = trace.Tee(src, recorder)
	}

	if *replay != "" {
		fmt.Printf("engine=%s seed=%d replay=%s\n\n", engine, *seed, *replay)
	} else {
		fmt.Printf("engine=%s scenario=%s seed=%d\n\n", engine, *scenario, *seed)
	}
	fmt.Printf("%10s  %8s  %10s  %10s  %10s  %8s  %8s\n",
		"steps", "nodes", "mean adj", "mean rnds", "mean bcast", "max |S|", "|MIS|")

	// Windowed statistics over the stream, printed as it is ingested.
	var (
		adj, rounds, bcasts, ssize stats.Series
		done                       int
	)
	flush := func() {
		fmt.Printf("%10d  %8d  %10.3f  %10.3f  %10.3f  %8d  %8d\n",
			done, m.NodeCount(), adj.Mean(), rounds.Mean(), bcasts.Mean(),
			int(ssize.Max()), misSize(m))
		adj, rounds, bcasts, ssize = stats.Series{}, stats.Series{}, stats.Series{}, stats.Series{}
	}
	sum, err := m.Drive(context.Background(), src,
		dynmis.DriveObserver(func(_ []dynmis.Change, rep dynmis.Report) {
			adj.ObserveInt(rep.Adjustments)
			rounds.ObserveInt(rep.Rounds)
			bcasts.ObserveInt(rep.Broadcasts)
			ssize.ObserveInt(rep.SSize)
			done++
			if done%*window == 0 {
				flush()
			}
		}))
	if err != nil {
		fatal(fmt.Errorf("at step %d: %w", done, err))
	}
	if reader != nil && reader.Err() != nil {
		fatal(reader.Err())
	}
	if done%*window != 0 {
		flush()
	}
	if recorder != nil {
		if err := recorder.Flush(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nrecorded %d changes to %s\n", sum.Changes, *record)
	}

	if err := m.Check(); err != nil {
		fatal(fmt.Errorf("VERIFICATION FAILED: %w", err))
	}
	fmt.Printf("\ninvariants verified after %d changes (mean adjustments %.3f, max %d)\n",
		sum.Changes, sum.MeanAdjustments(), sum.Max.Adjustments)
}

// concat chains sources back to back.
func concat(srcs ...dynmis.Source) dynmis.Source {
	return func(yield func(dynmis.Change) bool) {
		for _, src := range srcs {
			for c := range src {
				if !yield(c) {
					return
				}
			}
		}
	}
}

// misSize counts the MIS without materializing the sorted slice.
func misSize(m *dynmis.Maintainer) int {
	size := 0
	for range m.MISSeq() {
		size++
	}
	return size
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
