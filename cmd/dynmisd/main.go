// Command dynmisd is the dynmis maintainer daemon: it keeps a maximal
// independent set under a live stream of topology changes and serves it
// over HTTP — ingest via POST /v1/changes (JSON) or POST /v1/stream
// (NDJSON), membership events via GET /v1/events (NDJSON or SSE, with
// resume-from-seq), full state via GET /v1/state, counters via /metricsz.
// The wire protocol is documented in docs/WIRE.md.
//
// With -wal the daemon is durable: every accepted change is appended to a
// write-ahead log (in the dynmis/trace format, so any trace tool can
// replay it) before acknowledgment, snapshots are taken every -snap-every
// changes, and a restart — graceful or kill -9 — recovers the exact
// structure and continues the event sequence where it left off.
//
// With -follow the daemon is a read replica: it bootstraps from the
// leader's /v1/state, folds the leader's event stream, and serves the
// same read surface; ingestion endpoints answer 403 with the leader URL.
//
// Usage:
//
//	dynmisd [-addr 127.0.0.1:7070] [-addr-file path]
//	        [-wal path] [-snap path] [-snap-every 10000]
//	        [-fsync always|interval|never] [-fsync-interval 50ms]
//	        [-engine template|sharded] [-shards N] [-seed 1]
//	        [-retain 0] [-follow http://leader]
//
// -addr-file writes the actually-bound address (useful with :0) so
// scripts can find the daemon. SIGINT/SIGTERM shut down gracefully:
// in-flight batches drain, subscribers receive a terminal record, the
// WAL is fsynced and a final snapshot written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynmis"
	"dynmis/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address (use :0 for an ephemeral port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening")
		walPath   = flag.String("wal", "", "write-ahead log path (empty: in-memory, no durability)")
		snapPath  = flag.String("snap", "", "snapshot path (default: <wal>.snap)")
		snapEvery = flag.Int("snap-every", 10000, "snapshot after this many accepted changes (0: only on shutdown)")
		fsyncStr  = flag.String("fsync", "always", "WAL durability: always, interval or never")
		fsyncIv   = flag.Duration("fsync-interval", 50*time.Millisecond, "ticker period for -fsync interval")
		engineStr = flag.String("engine", "template", "engine: template or sharded")
		shards    = flag.Int("shards", 0, "shard count for -engine sharded (0: GOMAXPROCS)")
		seed      = flag.Uint64("seed", 1, "priority-stream seed (keep stable across restarts of a durable daemon)")
		retain    = flag.Int("retain", 0, "retained events for resume-from-seq (0: unlimited)")
		follow    = flag.String("follow", "", "run as a read replica of this leader URL")
	)
	flag.Parse()
	if err := run(*addr, *addrFile, *walPath, *snapPath, *snapEvery, *fsyncStr, *fsyncIv,
		*engineStr, *shards, *seed, *retain, *follow); err != nil {
		fmt.Fprintln(os.Stderr, "dynmisd:", err)
		os.Exit(1)
	}
}

func run(addr, addrFile, walPath, snapPath string, snapEvery int, fsyncStr string,
	fsyncIv time.Duration, engineStr string, shards int, seed uint64, retain int, follow string) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}

	if follow != "" {
		return runReplica(ctx, ln, bound, follow, retain)
	}
	return runLeader(ctx, ln, bound, walPath, snapPath, snapEvery, fsyncStr, fsyncIv,
		engineStr, shards, seed, retain)
}

func runLeader(ctx context.Context, ln net.Listener, bound, walPath, snapPath string,
	snapEvery int, fsyncStr string, fsyncIv time.Duration, engineStr string,
	shards int, seed uint64, retain int) error {
	fsync, err := server.ParseFsyncPolicy(fsyncStr)
	if err != nil {
		return err
	}
	var engine dynmis.Engine
	switch engineStr {
	case "template":
		engine = dynmis.EngineTemplate
	case "sharded":
		engine = dynmis.EngineSharded
	default:
		return fmt.Errorf("unknown engine %q (want template or sharded)", engineStr)
	}
	srv, err := server.Open(server.Config{
		Engine:        engine,
		Shards:        shards,
		Seed:          seed,
		WALPath:       walPath,
		SnapPath:      snapPath,
		SnapEvery:     snapEvery,
		Fsync:         fsync,
		FsyncInterval: fsyncIv,
		Retain:        retain,
	})
	if err != nil {
		return err
	}
	rec := srv.Recovery()
	mode := "in-memory"
	if walPath != "" {
		mode = fmt.Sprintf("wal=%s fsync=%s", walPath, fsync)
	}
	fmt.Printf("dynmisd: leader on %s (%s, engine=%s, seed=%d, seq=%d", bound, mode, engineStr, seed, srv.Seq())
	if rec.WALChanges > 0 || rec.FromSnapshot {
		fmt.Printf(", recovered: snapshot=%v wal_changes=%d tail_replayed=%d torn_tail=%v",
			rec.FromSnapshot, rec.WALChanges, rec.TailReplayed, rec.TornTail)
	}
	fmt.Println(")")

	return serveUntilDone(ctx, ln, srv, srv.Close)
}

func runReplica(ctx context.Context, ln net.Listener, bound, leader string, retain int) error {
	rep := server.OpenReplica(server.ReplicaConfig{Leader: leader, Retain: retain})
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		rep.Run(runCtx)
	}()
	fmt.Printf("dynmisd: replica on %s following %s\n", bound, leader)
	return serveUntilDone(ctx, ln, rep, func() error {
		cancel()
		<-done
		return nil
	})
}

// serveUntilDone serves handler on ln until ctx is cancelled, then shuts
// down in order: first close (which ends the never-ending event streams
// with a terminal record and, on a leader, fsyncs the WAL), then the HTTP
// server's graceful Shutdown, which waits for those handlers to finish
// writing.
func serveUntilDone(ctx context.Context, ln net.Listener, handler http.Handler, close func() error) error {
	httpSrv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("dynmisd: shutting down")
	err := close()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if serr := httpSrv.Shutdown(sctx); serr != nil && !errors.Is(serr, context.DeadlineExceeded) {
		if err == nil {
			err = serr
		}
	}
	<-errc // http.ErrServerClosed
	return err
}
