// Command dynmisload is the load generator and stream checker for
// dynmisd: it instantiates a workload scenario (the same seeded
// generators every other tool in this repo uses), drives its changes to a
// daemon over POST /v1/stream, and — concurrently — holds any number of
// event subscriptions open, checking each received stream for sequence
// gaps and duplicates.
//
// In -verify mode it additionally replays the same changes into a local
// maintainer with the daemon's seed and compares GET /v1/state against
// the local State node for node, so a run doubles as an end-to-end
// correctness check of the wire path.
//
// Usage:
//
//	dynmisload -addr http://127.0.0.1:7070
//	           [-scenario churn] [-nodes 200] [-steps 50000] [-seed 1]
//	           [-subscribers 4] [-verify] [-verify-wal path] [-timeout 2m]
//
// -verify-wal replays the named trace file (typically the daemon's WAL)
// as the reference instead of the generated workload, which is the right
// check against a recovered daemon; -steps 0 skips driving entirely.
//
// Exit status is non-zero on any gap, duplicate, rejected change, or
// (under -verify) state divergence.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dynmis"
	"dynmis/server"
	"dynmis/trace"
	"dynmis/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:7070", "daemon base URL")
		scenario  = flag.String("scenario", "churn", "workload scenario name")
		nodes     = flag.Int("nodes", 200, "scenario node budget")
		steps     = flag.Int("steps", 50000, "drive-phase changes")
		seed      = flag.Uint64("seed", 1, "workload seed (also the engine seed under -verify)")
		subs      = flag.Int("subscribers", 4, "concurrent event subscriptions to hold open and gap-check")
		verify    = flag.Bool("verify", false, "replay locally and compare /v1/state")
		verifyWAL = flag.String("verify-wal", "", "with -verify: replay this trace file (e.g. the daemon's WAL) instead of the generated workload — the check for a recovered daemon")
		timeout   = flag.Duration("timeout", 2*time.Minute, "overall deadline")
	)
	flag.Parse()
	if err := run(*addr, *scenario, *nodes, *steps, *seed, *subs, *verify, *verifyWAL, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "dynmisload:", err)
		os.Exit(1)
	}
}

func run(addr, scenario string, nodes, steps int, seed uint64, subs int, verify bool, verifyWAL string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// -steps 0 skips driving entirely: the invocation only runs the
	// subscriber and verify legs (used against a recovered daemon).
	var changes []dynmis.Change
	if steps > 0 {
		sc, ok := workload.ScenarioByName(scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q", scenario)
		}
		inst := sc.Instantiate(seed, nodes, steps)
		changes = slices.Concat(inst.Build, inst.Drive)
	}

	client := &http.Client{}

	// Resume point for the subscribers: everything the daemon already
	// holds is history; we gap-check what our own load produces.
	start, err := fetchSeq(ctx, client, addr)
	if err != nil {
		return err
	}

	// Subscribers first, so no event from this run can be missed.
	type subResult struct {
		n    int
		evs  uint64
		last uint64
		err  error
	}
	subCtx, subCancel := context.WithCancel(ctx)
	defer subCancel()
	var wg sync.WaitGroup
	results := make([]subResult, subs)
	lasts := make([]atomic.Uint64, subs) // live progress, readable while streaming
	for i := range subs {
		lasts[i].Store(start)
		wg.Add(1)
		go func() {
			defer wg.Done()
			evs, last, err := subscribe(subCtx, client, addr, start, &lasts[i])
			results[i] = subResult{n: i, evs: evs, last: last, err: err}
		}()
	}

	// Drive the load.
	t0 := time.Now()
	res, err := stream(ctx, client, addr, changes)
	if err != nil {
		subCancel()
		wg.Wait()
		return err
	}
	elapsed := time.Since(t0)
	fmt.Printf("dynmisload: %d accepted, %d rejected in %v (%.0f changes/s), seq %d\n",
		res.Accepted, res.Rejected, elapsed.Round(time.Millisecond),
		float64(res.Accepted)/elapsed.Seconds(), res.Seq)
	if res.Rejected > 0 {
		return fmt.Errorf("%d changes rejected (first: %v)", res.Rejected, res.Errors)
	}

	// Let the subscribers drain up to the final watermark, then release
	// them. The deadline is stall-based rather than absolute: as long as
	// any subscriber is still making progress we keep waiting, so a large
	// backlog fan-out isn't cut off mid-drain.
	caughtUp := func() bool {
		for i := range lasts {
			if lasts[i].Load() < res.Seq {
				return false
			}
		}
		return true
	}
	lastProgress := time.Now()
	var prevTotal uint64
	for !caughtUp() {
		var total uint64
		for i := range lasts {
			total += lasts[i].Load()
		}
		if total > prevTotal {
			prevTotal, lastProgress = total, time.Now()
		}
		if time.Since(lastProgress) > 15*time.Second {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	subCancel()
	wg.Wait()

	want := res.Seq - start
	for _, r := range results {
		if r.err != nil {
			return fmt.Errorf("subscriber %d: %w", r.n, r.err)
		}
		if r.evs < want || r.last < res.Seq {
			return fmt.Errorf("subscriber %d: saw %d events to seq %d, want %d to seq %d",
				r.n, r.evs, r.last, want, res.Seq)
		}
	}
	if subs > 0 {
		fmt.Printf("dynmisload: %d subscribers each received %d events gap-free\n", subs, want)
	}

	if verify {
		ref := changes
		if verifyWAL != "" {
			// Replay the daemon's own WAL instead of the generated
			// workload — the correct reference for a recovered daemon,
			// whose state covers traffic this invocation never drove.
			if ref, err = loadTrace(verifyWAL); err != nil {
				return err
			}
		}
		if err := verifyState(ctx, client, addr, ref, seed); err != nil {
			return err
		}
		fmt.Println("dynmisload: /v1/state matches the local replay exactly")
	}
	return nil
}

// loadTrace reads every change from a trace/WAL file.
func loadTrace(path string) ([]dynmis.Change, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cs, err := trace.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cs, nil
}

// fetchSeq reads the daemon's current watermark.
func fetchSeq(ctx context.Context, client *http.Client, addr string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/state", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /v1/state: %s", resp.Status)
	}
	var doc server.StateDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, err
	}
	return doc.Seq, nil
}

// stream POSTs the changes as one NDJSON request body.
func stream(ctx context.Context, client *http.Client, addr string, cs []dynmis.Change) (server.IngestResult, error) {
	var res server.IngestResult
	var buf bytes.Buffer
	for _, c := range cs {
		line, err := trace.MarshalChange(c)
		if err != nil {
			return res, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/stream", &buf)
	if err != nil {
		return res, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return res, fmt.Errorf("POST /v1/stream: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	err = json.Unmarshal(body, &res)
	return res, err
}

// subscribe holds one NDJSON event subscription open from seq `from`,
// verifying the stream is contiguous, until ctx is cancelled or the
// stream ends. It reports how many events it saw and the last seq, and
// publishes its cursor to progress after every event.
func subscribe(ctx context.Context, client *http.Client, addr string, from uint64, progress *atomic.Uint64) (evs, last uint64, err error) {
	url := fmt.Sprintf("%s/v1/events?from=%d", addr, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return evs, last, nil
		}
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return 0, 0, fmt.Errorf("GET /v1/events: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	cursor := from
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec struct {
			server.WireEvent
			End   bool   `json:"end"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			if ctx.Err() != nil {
				// A cancelled body read can surface a torn final line;
				// everything up to it was already checked.
				return evs, last, nil
			}
			return evs, last, err
		}
		switch {
		case rec.Cause != "":
			if rec.Seq != cursor+1 {
				return evs, last, fmt.Errorf("gap: have seq %d, got %d", cursor, rec.Seq)
			}
			cursor = rec.Seq
			evs++
			last = rec.Seq
			progress.Store(cursor)
		case rec.Error != "":
			return evs, last, fmt.Errorf("stream terminated: %s", rec.Error)
		case rec.End:
			return evs, last, nil
		}
	}
	if serr := sc.Err(); serr != nil && ctx.Err() == nil {
		return evs, last, serr
	}
	return evs, last, nil
}

// verifyState replays the changes locally under the same seed and
// compares the daemon's /v1/state node for node.
func verifyState(ctx context.Context, client *http.Client, addr string, cs []dynmis.Change, seed uint64) error {
	m, err := dynmis.New(dynmis.WithSeed(seed))
	if err != nil {
		return err
	}
	for _, c := range cs {
		if _, err := m.Apply(c); err != nil {
			return fmt.Errorf("local replay: %w", err)
		}
	}
	local := m.State()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/state", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var doc server.StateDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return err
	}
	if len(doc.Nodes) != len(local) {
		return fmt.Errorf("verify: daemon has %d nodes, local replay %d", len(doc.Nodes), len(local))
	}
	for _, n := range doc.Nodes {
		m, ok := local[n.Node]
		if !ok {
			return fmt.Errorf("verify: daemon has node %d, local replay does not", n.Node)
		}
		if (m == dynmis.In) != n.InMIS {
			return fmt.Errorf("verify: node %d: daemon in_mis=%v, local %v", n.Node, n.InMIS, m == dynmis.In)
		}
	}
	return nil
}
